//! The resident daemon: accept loop, connection handlers, the supervised
//! worker pool and the socket-backed streaming [`Observer`].
//!
//! # Lifecycle
//!
//! [`Server::bind`] opens the listener; [`Server::run`] blocks in the accept
//! loop until a `shutdown` request arrives over any connection. Each
//! connection gets a handler thread that parses request frames and replies
//! inline to everything except `run`, which passes **admission control**
//! (deck size, parse, footprint budget, in-flight budget, overload stage)
//! before it reaches the bounded [`JobQueue`]. A supervised pool of worker
//! threads drains the queue; every worker session is constructed with
//! [`Simulator::with_shared_symbolic`] and [`Simulator::with_plan_cache`]
//! over the server's two warm caches, so jobs sharing a circuit fingerprint
//! perform exactly one symbolic analysis and one plan compilation
//! server-wide, however many clients submit them.
//!
//! # Hostile tenants
//!
//! The hardening layer assumes every peer misbehaves:
//!
//! * **Admission control** — a deck's footprint (unknowns, estimated
//!   nonzeros, declared `.tran` steps) is checked against [`JobBudget`]
//!   before queueing; a server-wide in-flight unknown budget bounds total
//!   resident state; jobs that declare no deadline get the configured
//!   default. Refusals are attributed `rejected{reason}` frames.
//! * **Worker supervision** — a worker that panics attributes the failure
//!   to its job (`internal`-class error), then retires; the supervisor
//!   respawns a replacement with fresh thread state, bounded per window
//!   ([`ServeConfig::respawn_limit`]), after which the server runs degraded.
//! * **Connection robustness** — a frame that stalls mid-read past
//!   [`ServeConfig::read_timeout_ms`], or a connection idle past
//!   [`ServeConfig::idle_timeout_ms`], is reaped without occupying a worker;
//!   a client that stops reading trips [`ServeConfig::write_stall_ms`] on
//!   the socket and the job is cancelled at the next step boundary.
//! * **Overload ladder** — a queue that stays full escalates through
//!   documented stages: shed new decks, cancel running jobs past the soft
//!   deadline (deadline-less jobs first), then drain everything. Every
//!   transition is visible in [`ServerStats`].
//!
//! # Shutdown
//!
//! A `shutdown` request closes the queue (workers drain every already-queued
//! job before exiting) and half-closes the read side of every open
//! connection, which unblocks the handler threads without disturbing the
//! write side — a client whose job is still running keeps receiving chunks
//! until its final `done` frame.

use std::collections::{HashMap, VecDeque};
use std::io::Read as _;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use exi_netlist::{parse_deck, Analysis, Deck};
use exi_sim::{
    analysis_options, resolve_probes, CancelReason, CancelToken, Engine, Method, Observer,
    PlanCache, Probe, RunStats, Simulator, StepOutcome,
};
use exi_sparse::SymbolicCache;

use crate::protocol::{write_frame, FrameError, Request, Response, RunRequest};
use crate::queue::{JobQueue, PushError};
use crate::stats::ServerStats;

/// Per-job footprint limits, estimated at admission from the parsed deck —
/// before the job can queue, let alone touch a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobBudget {
    /// Largest admissible MNA system (nodes + branch currents).
    pub max_unknowns: usize,
    /// Largest admissible estimated `G`-pattern nonzero count.
    pub max_est_nnz: usize,
    /// Largest admissible declared step count, `ceil(stop / step)` from the
    /// `.tran` card — the adaptive control may take fewer or more, but the
    /// declaration bounds what the client *asked* for.
    pub max_declared_steps: usize,
}

impl Default for JobBudget {
    fn default() -> Self {
        JobBudget {
            max_unknowns: 200_000,
            max_est_nnz: 8_000_000,
            max_declared_steps: 10_000_000,
        }
    }
}

/// Overload-ladder thresholds. The ladder escalates while the queue sits at
/// capacity and de-escalates once it drains to half:
///
/// | stage | entered after       | behavior                                 |
/// |-------|---------------------|------------------------------------------|
/// | 0     | —                   | normal admission                         |
/// | 1     | `shed_after_ms`     | new decks rejected (`reason: overload`)  |
/// | 2     | `cancel_after_ms`   | + cancel one running job per tick that is |
/// |       |                     |   past `soft_deadline_ms` (deadline-less  |
/// |       |                     |   jobs first, oldest first)               |
/// | 3     | `drain_after_ms`    | + cancel every running job               |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Sustained-full time before stage 1 (shed new work).
    pub shed_after_ms: u64,
    /// Sustained-full time before stage 2 (cancel past-soft-deadline jobs).
    pub cancel_after_ms: u64,
    /// Sustained-full time before stage 3 (cancel all running jobs).
    pub drain_after_ms: u64,
    /// Minimum runtime before a job is a stage-2 cancellation victim.
    pub soft_deadline_ms: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            shed_after_ms: 30_000,
            cancel_after_ms: 60_000,
            drain_after_ms: 120_000,
            soft_deadline_ms: 10_000,
        }
    }
}

/// Settings of one daemon instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Job-queue capacity; a full queue bounces `run` requests with `busy`.
    pub queue_capacity: usize,
    /// Maximum accepted frame payload in bytes (a larger declared length is
    /// a protocol error and closes the connection).
    pub max_frame_bytes: usize,
    /// Maximum accepted deck text in bytes (a larger deck is rejected with a
    /// `usage`-class error; the connection stays open).
    pub max_deck_bytes: usize,
    /// Warm symbolic-cache capacity (`None` = unbounded).
    pub symbolic_cache_capacity: Option<usize>,
    /// Warm plan-cache capacity (`None` = unbounded).
    pub plan_cache_capacity: Option<usize>,
    /// Rows per `chunk` frame when the request does not choose its own.
    pub default_chunk_rows: usize,
    /// Per-job footprint budget enforced at admission.
    pub budget: JobBudget,
    /// Server-wide cap on the summed unknown counts of active (queued or
    /// running) jobs; 0 disables the check. Keep it at least
    /// `budget.max_unknowns` or a lone maximal job can never run.
    pub max_inflight_unknowns: usize,
    /// Deadline applied to jobs that declare none, in milliseconds;
    /// 0 leaves undeclared jobs uncapped.
    pub default_deadline_ms: u64,
    /// How long a started frame may stall mid-read before the connection is
    /// reaped (the slow-loris bound); 0 disables.
    pub read_timeout_ms: u64,
    /// How long a connection may sit idle between frames before it is
    /// reaped; 0 disables.
    pub idle_timeout_ms: u64,
    /// How long one frame write may block on a stalled client before the
    /// write fails (and a streaming job is cancelled at the next step
    /// boundary); 0 disables.
    pub write_stall_ms: u64,
    /// Worker respawns allowed per `respawn_window_ms` before the server
    /// enters degraded mode.
    pub respawn_limit: usize,
    /// The sliding window over which `respawn_limit` is enforced.
    pub respawn_window_ms: u64,
    /// Overload-ladder thresholds.
    pub overload: OverloadConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            max_frame_bytes: crate::protocol::DEFAULT_MAX_FRAME_BYTES,
            max_deck_bytes: 256 * 1024,
            symbolic_cache_capacity: Some(64),
            plan_cache_capacity: Some(64),
            default_chunk_rows: 64,
            budget: JobBudget::default(),
            max_inflight_unknowns: 1_000_000,
            default_deadline_ms: 600_000,
            read_timeout_ms: 10_000,
            idle_timeout_ms: 300_000,
            write_stall_ms: 30_000,
            respawn_limit: 8,
            respawn_window_ms: 60_000,
            overload: OverloadConfig::default(),
        }
    }
}

/// Lifetime job counters, maintained under one lock so a `stats` snapshot is
/// internally consistent.
#[derive(Debug, Default)]
struct Counters {
    jobs_accepted: u64,
    jobs_completed: u64,
    jobs_failed: u64,
    jobs_cancelled: u64,
    jobs_rejected: u64,
    jobs_rejected_budget: u64,
    jobs_shed_overload: u64,
    jobs_cancelled_overload: u64,
    workers_respawned: u64,
    connections_reaped: u64,
    write_stalls: u64,
    overload_transitions: u64,
    accepted_steps: usize,
    symbolic_analyses: usize,
    shared_symbolic_hits: usize,
    plan_compilations: usize,
    shared_plan_hits: usize,
}

/// One admitted `run` request, queued for a worker. The deck is parsed at
/// admission (the footprint budget needs the circuit), so workers never see
/// unparseable input.
struct Job {
    id: String,
    deck: Deck,
    method: Method,
    probes: Vec<String>,
    decimate: usize,
    chunk_rows: usize,
    deadline: Option<Duration>,
    token: CancelToken,
    writer: Arc<ConnWriter>,
}

/// The cancel-registry entry of an active (queued or running) job — enough
/// state for wire cancellation, the in-flight budget and the overload
/// ladder's victim selection.
struct ActiveJob {
    token: CancelToken,
    /// Unknown count charged against `max_inflight_unknowns`.
    unknowns: usize,
    /// Set when a worker picks the job up; `None` while queued.
    started: Option<Instant>,
    /// Whether the job declared (or inherited) a deadline — deadline-less
    /// jobs are preferred overload victims.
    has_deadline: bool,
}

/// State shared by the accept loop, handlers, workers and the supervisor.
struct Shared {
    config: ServeConfig,
    queue: JobQueue<Job>,
    symbolic: Arc<SymbolicCache>,
    plans: Arc<PlanCache>,
    counters: Mutex<Counters>,
    /// Active (queued or running) jobs by id — the cancel registry.
    active: Mutex<HashMap<String, ActiveJob>>,
    /// Read-half handles of open connections, half-closed at shutdown to
    /// unblock handler threads.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection: AtomicU64,
    shutdown: AtomicBool,
    /// Summed unknown counts of active jobs (the in-flight budget).
    inflight_unknowns: AtomicUsize,
    /// Workers currently in their pop loop.
    live_workers: AtomicUsize,
    /// Workers that retired after a panic, awaiting supervisor respawn.
    dead_workers: AtomicUsize,
    /// Set when the respawn budget is exhausted with workers still dead.
    degraded: AtomicBool,
    /// Current overload-ladder stage (0 normal … 3 drain).
    overload_stage: AtomicUsize,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Shared {
    fn snapshot(&self) -> ServerStats {
        let counters = lock(&self.counters);
        ServerStats {
            jobs_accepted: counters.jobs_accepted,
            jobs_completed: counters.jobs_completed,
            jobs_failed: counters.jobs_failed,
            jobs_cancelled: counters.jobs_cancelled,
            jobs_rejected: counters.jobs_rejected,
            jobs_rejected_budget: counters.jobs_rejected_budget,
            jobs_shed_overload: counters.jobs_shed_overload,
            jobs_cancelled_overload: counters.jobs_cancelled_overload,
            workers_respawned: counters.workers_respawned,
            connections_reaped: counters.connections_reaped,
            write_stalls: counters.write_stalls,
            overload_transitions: counters.overload_transitions,
            overload_stage: self.overload_stage.load(Ordering::SeqCst),
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
            workers: self.config.workers,
            accepted_steps: counters.accepted_steps,
            symbolic_analyses: counters.symbolic_analyses,
            shared_symbolic_hits: counters.shared_symbolic_hits,
            plan_compilations: counters.plan_compilations,
            shared_plan_hits: counters.shared_plan_hits,
            symbolic_cache: self.symbolic.stats(),
            plan_cache: self.plans.stats(),
        }
    }

    /// Stops accepting work and unblocks every thread: future pushes fail,
    /// workers drain the backlog, handlers see EOF on their read half.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        for conn in lock(&self.connections).values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }

    /// Removes a job from the cancel registry and releases its in-flight
    /// unknown charge.
    fn release_job(&self, id: &str) -> Option<ActiveJob> {
        let entry = lock(&self.active).remove(id)?;
        self.inflight_unknowns
            .fetch_sub(entry.unknowns, Ordering::SeqCst);
        Some(entry)
    }
}

/// The write half of one connection: the socket behind a mutex (workers and
/// the handler interleave whole frames through it) plus, under
/// `wire-fault-injection`, the armed write-side fault state.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    #[cfg(feature = "wire-fault-injection")]
    fault: Mutex<WriteFaultState>,
}

#[cfg(feature = "wire-fault-injection")]
#[derive(Debug, Default)]
struct WriteFaultState {
    truncate_write: Option<(usize, usize)>,
    disconnect_at_write: Option<usize>,
    /// 1-based count of frame writes attempted on this connection.
    writes: usize,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter {
            stream: Mutex::new(stream),
            #[cfg(feature = "wire-fault-injection")]
            fault: Mutex::new(WriteFaultState::default()),
        }
    }

    /// Locks the underlying stream — admission holds this across
    /// queue-push + reply so a worker's first `chunk` can never overtake
    /// the `accepted` frame.
    fn lock_stream(&self) -> MutexGuard<'_, TcpStream> {
        lock(&self.stream)
    }

    /// Writes one frame through an already-held stream lock, applying any
    /// armed write-side wire fault first.
    fn write_frame_with(&self, stream: &mut TcpStream, json: &str) -> std::io::Result<()> {
        #[cfg(feature = "wire-fault-injection")]
        {
            let mut fault = lock(&self.fault);
            fault.writes += 1;
            if fault.disconnect_at_write == Some(fault.writes) {
                let _ = stream.shutdown(Shutdown::Both);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "fault injection: disconnect at write",
                ));
            }
            if let Some((at, bytes)) = fault.truncate_write {
                if at == fault.writes {
                    let mut frame = format!("{}\n{json}\n", json.len());
                    frame.truncate(bytes.min(frame.len()));
                    use std::io::Write as _;
                    let _ = stream.write_all(frame.as_bytes());
                    let _ = stream.flush();
                    let _ = stream.shutdown(Shutdown::Both);
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "fault injection: truncated write",
                    ));
                }
            }
        }
        write_frame(stream, json)
    }

    fn write_response(&self, json: &str) -> std::io::Result<()> {
        let mut stream = self.lock_stream();
        self.write_frame_with(&mut stream, json)
    }
}

/// Serializes and writes one response frame; returns whether the peer is
/// still reachable. A write that failed because the client stalled past the
/// write-stall deadline is counted in `write_stalls`.
fn send(shared: &Shared, writer: &ConnWriter, response: &Response) -> bool {
    match writer.write_response(&response.to_json()) {
        Ok(()) => true,
        Err(e) => {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                lock(&shared.counters).write_stalls += 1;
            }
            false
        }
    }
}

/// What the connection's frame reader produced.
enum ReadEvent {
    /// One complete frame payload.
    Frame(String),
    /// Clean end-of-stream (includes a peer that died mid-frame).
    Eof,
    /// The read/idle deadline expired; the connection is being reaped.
    Reaped,
    /// A transport error.
    Io,
    /// A protocol violation worth a `protocol_error` reply before closing.
    Violation(FrameError),
}

/// A frame reader with deadline enforcement: a *started* frame must complete
/// within the read timeout (the slow-loris bound), and an *empty* connection
/// must produce bytes within the idle timeout. Framing semantics match
/// [`crate::protocol::read_frame`] — same length-line bound, same error
/// messages.
struct TimedFrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    frame_timeout: Option<Duration>,
    idle_timeout: Option<Duration>,
    /// When the first byte of the pending frame arrived.
    frame_started: Option<Instant>,
    last_activity: Instant,
    blocking_configured: bool,
    #[cfg(feature = "wire-fault-injection")]
    frames_done: usize,
    #[cfg(feature = "wire-fault-injection")]
    stall_read_ms: Option<(usize, u64)>,
    #[cfg(feature = "wire-fault-injection")]
    corrupt_len_line: Option<usize>,
}

impl TimedFrameReader {
    fn new(stream: TcpStream, frame_timeout_ms: u64, idle_timeout_ms: u64) -> TimedFrameReader {
        TimedFrameReader {
            stream,
            buf: Vec::new(),
            frame_timeout: (frame_timeout_ms > 0).then(|| Duration::from_millis(frame_timeout_ms)),
            idle_timeout: (idle_timeout_ms > 0).then(|| Duration::from_millis(idle_timeout_ms)),
            frame_started: None,
            last_activity: Instant::now(),
            blocking_configured: false,
            #[cfg(feature = "wire-fault-injection")]
            frames_done: 0,
            #[cfg(feature = "wire-fault-injection")]
            stall_read_ms: None,
            #[cfg(feature = "wire-fault-injection")]
            corrupt_len_line: None,
        }
    }

    /// Blocks for the next frame (or deadline/EOF/error).
    fn read_event(&mut self, max_bytes: usize) -> ReadEvent {
        #[cfg(feature = "wire-fault-injection")]
        if let Some((frame, ms)) = self.stall_read_ms {
            if self.frames_done + 1 == frame {
                // One-shot: stall this connection's reader, then resume. A
                // stall past the idle deadline draws the reaper below.
                self.stall_read_ms = None;
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        loop {
            match self.try_parse(max_bytes) {
                Ok(Some(payload)) => {
                    #[cfg(feature = "wire-fault-injection")]
                    {
                        self.frames_done += 1;
                        if self.corrupt_len_line == Some(self.frames_done) {
                            return ReadEvent::Violation(FrameError::Malformed(
                                "fault injection: corrupted length line".to_string(),
                            ));
                        }
                    }
                    return ReadEvent::Frame(payload);
                }
                Ok(None) => {}
                Err(e) => return ReadEvent::Violation(e),
            }
            let now = Instant::now();
            let mut nearest: Option<Instant> = None;
            if let (Some(timeout), Some(started)) = (self.frame_timeout, self.frame_started) {
                let deadline = started + timeout;
                if now >= deadline {
                    return ReadEvent::Reaped;
                }
                nearest = Some(deadline);
            }
            if let Some(timeout) = self.idle_timeout {
                if self.buf.is_empty() {
                    let deadline = self.last_activity + timeout;
                    if now >= deadline {
                        return ReadEvent::Reaped;
                    }
                    nearest = Some(nearest.map_or(deadline, |n| n.min(deadline)));
                }
            }
            if !self.configure_timeout(nearest, now) {
                return ReadEvent::Io;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadEvent::Eof,
                Ok(n) => {
                    if self.buf.is_empty() {
                        self.frame_started = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Deadline re-check at the top of the loop.
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return ReadEvent::Io,
            }
        }
    }

    /// Points the socket's receive timeout at the nearest deadline (clamped
    /// to at least 1 ms — a zero timeout is an error on every platform).
    /// Returns `false` if the socket refused configuration.
    fn configure_timeout(&mut self, nearest: Option<Instant>, now: Instant) -> bool {
        match nearest {
            Some(deadline) => {
                let remaining = deadline
                    .saturating_duration_since(now)
                    .max(Duration::from_millis(1));
                self.blocking_configured = false;
                self.stream.set_read_timeout(Some(remaining)).is_ok()
            }
            None => {
                if self.blocking_configured {
                    return true;
                }
                self.blocking_configured = true;
                self.stream.set_read_timeout(None).is_ok()
            }
        }
    }

    /// Extracts one complete frame from the head of the buffer, mirroring
    /// [`crate::protocol::read_frame`]'s framing rules and messages.
    fn try_parse(&mut self, max_bytes: usize) -> Result<Option<String>, FrameError> {
        let window = self.buf.len().min(32);
        let Some(nl) = self.buf[..window].iter().position(|&b| b == b'\n') else {
            if self.buf.len() >= 32 {
                let prefix = String::from_utf8_lossy(&self.buf[..window]).into_owned();
                return Err(FrameError::Malformed(format!(
                    "length line '{prefix}' not newline-terminated"
                )));
            }
            return Ok(None);
        };
        let line = std::str::from_utf8(&self.buf[..nl])
            .map_err(|_| FrameError::Malformed("length line is not utf-8".to_string()))?;
        let trimmed = line.trim_end_matches('\r');
        let declared: usize = trimmed
            .parse()
            .map_err(|_| FrameError::Malformed(format!("bad length line '{trimmed}'")))?;
        if declared > max_bytes {
            return Err(FrameError::Oversized {
                declared,
                limit: max_bytes,
            });
        }
        let total = nl + 1 + declared + 1;
        if self.buf.len() < total {
            return Ok(None);
        }
        if self.buf[total - 1] != b'\n' {
            return Err(FrameError::Malformed(
                "frame payload not newline-terminated".to_string(),
            ));
        }
        let payload = self.buf[nl + 1..total - 1].to_vec();
        self.buf.drain(..total);
        self.frame_started = (!self.buf.is_empty()).then(Instant::now);
        String::from_utf8(payload)
            .map(Some)
            .map_err(|_| FrameError::Malformed("frame payload is not utf-8".to_string()))
    }
}

/// The daemon. [`bind`](Server::bind) it, read
/// [`local_addr`](Server::local_addr), then [`run`](Server::run) it (usually
/// on its own thread); `run` returns the final [`ServerStats`] once a
/// `shutdown` request has drained the fleet.
pub struct Server {
    listener: TcpListener,
    shared: Shared,
}

impl Server {
    /// Binds the listen socket and builds the warm caches.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let symbolic = Arc::new(match config.symbolic_cache_capacity {
            Some(n) => SymbolicCache::with_capacity(n),
            None => SymbolicCache::new(),
        });
        let plans = Arc::new(match config.plan_cache_capacity {
            Some(n) => PlanCache::with_capacity(n),
            None => PlanCache::new(),
        });
        let queue = JobQueue::new(config.queue_capacity);
        Ok(Server {
            listener,
            shared: Shared {
                config,
                queue,
                symbolic,
                plans,
                counters: Mutex::new(Counters::default()),
                active: Mutex::new(HashMap::new()),
                connections: Mutex::new(HashMap::new()),
                next_connection: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                inflight_unknowns: AtomicUsize::new(0),
                live_workers: AtomicUsize::new(0),
                dead_workers: AtomicUsize::new(0),
                degraded: AtomicBool::new(false),
                overload_stage: AtomicUsize::new(0),
            },
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures of the socket.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon until a `shutdown` request arrives, then drains
    /// in-flight jobs and returns the final statistics snapshot.
    pub fn run(self) -> ServerStats {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.config.workers.max(1) {
                scope.spawn(|| worker_loop(shared));
            }
            scope.spawn(|| supervisor_loop(shared, scope));
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let accept_index =
                            shared.next_connection.fetch_add(1, Ordering::SeqCst) + 1;
                        scope.spawn(move || handle_connection(shared, stream, accept_index));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // Defensive: if the loop exited for any reason other than a
            // shutdown request, release the workers and the supervisor.
            shared.queue.close();
        });
        shared.snapshot()
    }
}

/// One worker: drain the queue until it closes — or retire early after a
/// panicking job so the supervisor can replace this thread with a fresh one
/// (fresh stack, fresh thread-locals).
fn worker_loop(shared: &Shared) {
    shared.live_workers.fetch_add(1, Ordering::SeqCst);
    while let Some(job) = shared.queue.pop() {
        if execute_job(shared, job) {
            shared.live_workers.fetch_sub(1, Ordering::SeqCst);
            shared.dead_workers.fetch_add(1, Ordering::SeqCst);
            return;
        }
    }
    shared.live_workers.fetch_sub(1, Ordering::SeqCst);
}

/// The supervisor: respawns retired workers (bounded per sliding window,
/// then degraded mode) and drives the overload ladder. Exits when the queue
/// closes — shutdown drains with whatever workers remain.
fn supervisor_loop<'scope, 'env>(
    shared: &'env Shared,
    scope: &'scope std::thread::Scope<'scope, 'env>,
) {
    let window = Duration::from_millis(shared.config.respawn_window_ms.max(1));
    let mut respawn_times: VecDeque<Instant> = VecDeque::new();
    let mut full_since: Option<Instant> = None;
    while !shared.queue.is_closed() {
        let now = Instant::now();

        // --- worker supervision -----------------------------------------
        while respawn_times
            .front()
            .is_some_and(|t| now.duration_since(*t) > window)
        {
            respawn_times.pop_front();
        }
        while shared.dead_workers.load(Ordering::SeqCst) > 0 {
            if respawn_times.len() >= shared.config.respawn_limit.max(1) {
                // Budget exhausted: leave the deficit pending (the window
                // slides) and flag degraded mode.
                shared.degraded.store(true, Ordering::SeqCst);
                break;
            }
            if shared
                .dead_workers
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                respawn_times.push_back(now);
                scope.spawn(|| worker_loop(shared));
                lock(&shared.counters).workers_respawned += 1;
                shared.degraded.store(false, Ordering::SeqCst);
            }
        }

        // --- overload ladder --------------------------------------------
        let depth = shared.queue.depth();
        let capacity = shared.queue.capacity();
        if depth >= capacity {
            full_since.get_or_insert(now);
        } else if depth * 2 <= capacity {
            full_since = None;
        }
        let stage = ladder_stage(
            full_since.map(|since| now.duration_since(since)),
            &shared.config.overload,
        );
        let previous = shared.overload_stage.swap(stage, Ordering::SeqCst);
        if previous != stage {
            lock(&shared.counters).overload_transitions += 1;
        }
        if stage >= 2 {
            cancel_overload_victims(shared, now, stage);
        }

        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Maps how long the queue has been full onto a ladder stage.
fn ladder_stage(full_for: Option<Duration>, overload: &OverloadConfig) -> usize {
    let Some(full_for) = full_for else { return 0 };
    let ms = u64::try_from(full_for.as_millis()).unwrap_or(u64::MAX);
    if ms >= overload.drain_after_ms {
        3
    } else if ms >= overload.cancel_after_ms {
        2
    } else if ms >= overload.shed_after_ms {
        1
    } else {
        0
    }
}

/// Stage 2: cancel the single best victim — running past the soft deadline,
/// deadline-less jobs first, oldest first. Stage 3: cancel every running
/// job. Ladder cancellations ride the ordinary [`CancelToken`] contract, so
/// the client still receives a bit-exact prefix partial.
fn cancel_overload_victims(shared: &Shared, now: Instant, stage: usize) {
    let soft = Duration::from_millis(shared.config.overload.soft_deadline_ms);
    let active = lock(&shared.active);
    let mut victims: Vec<(&String, &ActiveJob, Instant)> = active
        .iter()
        .filter_map(|(id, entry)| {
            let started = entry.started?;
            if entry.token.is_cancelled() {
                return None;
            }
            if stage < 3 && now.duration_since(started) < soft {
                return None;
            }
            Some((id, entry, started))
        })
        .collect();
    if stage < 3 {
        // One victim per tick: deadline-less first, then oldest.
        victims.sort_by_key(|(_, entry, started)| (entry.has_deadline, *started));
        victims.truncate(1);
    }
    let cancelled = victims.len() as u64;
    for (_, entry, _) in victims {
        entry.token.cancel();
    }
    drop(active);
    if cancelled > 0 {
        lock(&shared.counters).jobs_cancelled_overload += cancelled;
    }
}

/// One connection's request loop. Exits on EOF, I/O failure, protocol
/// violation (after a `protocol_error` reply), reap (read/idle deadline) or
/// server shutdown.
fn handle_connection(shared: &Shared, stream: TcpStream, accept_index: u64) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if shared.config.write_stall_ms > 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(
            shared.config.write_stall_ms.max(1),
        )));
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(registered) = stream.try_clone() else {
        return;
    };
    lock(&shared.connections).insert(accept_index, registered);
    // Close the race with a shutdown that began while we were registering:
    // from here on, `begin_shutdown` reaches this connection via the map.
    if shared.shutdown.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Read);
    }
    let mut reader = TimedFrameReader::new(
        read_half,
        shared.config.read_timeout_ms,
        shared.config.idle_timeout_ms,
    );
    let writer = Arc::new(ConnWriter::new(stream));
    #[cfg(feature = "wire-fault-injection")]
    if let Some(spec) = crate::wirefault::install(accept_index as usize) {
        reader.stall_read_ms = spec.stall_read_ms;
        reader.corrupt_len_line = spec.corrupt_len_line;
        let mut fault = lock(&writer.fault);
        fault.truncate_write = spec.truncate_write;
        fault.disconnect_at_write = spec.disconnect_at_write;
    }
    loop {
        let frame = match reader.read_event(shared.config.max_frame_bytes) {
            ReadEvent::Frame(frame) => frame,
            ReadEvent::Eof | ReadEvent::Io => break,
            ReadEvent::Reaped => {
                lock(&shared.counters).connections_reaped += 1;
                break;
            }
            ReadEvent::Violation(e) => {
                send(
                    shared,
                    &writer,
                    &Response::ProtocolError {
                        message: e.to_string(),
                    },
                );
                break;
            }
        };
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(message) => {
                send(shared, &writer, &Response::ProtocolError { message });
                break;
            }
        };
        match request {
            Request::Ping => {
                if !send(shared, &writer, &Response::Pong) {
                    break;
                }
            }
            Request::Stats => {
                if !send(shared, &writer, &Response::Stats(shared.snapshot())) {
                    break;
                }
            }
            Request::Cancel { id } => {
                let known = match lock(&shared.active).get(&id) {
                    Some(entry) => {
                        entry.token.cancel();
                        true
                    }
                    None => false,
                };
                if !send(shared, &writer, &Response::CancelAck { id, known }) {
                    break;
                }
            }
            Request::Shutdown => {
                send(shared, &writer, &Response::ShuttingDown);
                shared.begin_shutdown();
                break;
            }
            Request::Run(run) => {
                if !admit_run(shared, &writer, run) {
                    break;
                }
            }
        }
    }
    lock(&shared.connections).remove(&accept_index);
    // Dropping the reader and writer handles closes the socket once no
    // queued/running job still holds the writer — a reaped slow-loris with
    // no jobs closes immediately; a reaped connection with a streaming job
    // keeps its write half alive until the final frame.
}

/// The admission-time footprint estimate of one parsed deck.
struct Footprint {
    unknowns: usize,
    est_nnz: usize,
    declared_steps: usize,
}

/// Estimates a deck's resource footprint from its circuit and `.tran` card.
/// The nnz estimate is structural: each device or branch couples a bounded
/// number of unknown pairs (4 covers every two-terminal stamp plus the
/// diagonal contributions of MNA branch rows).
fn estimate_footprint(deck: &Deck, analysis: &Analysis) -> Footprint {
    let circuit = &deck.circuit;
    let unknowns = circuit.num_unknowns();
    let est_nnz = 4 * (circuit.num_devices() + circuit.num_branches()) + unknowns;
    let declared_steps = match analysis {
        Analysis::Tran { step, stop, .. } if *step > 0.0 && stop.is_finite() => {
            let ratio = (stop / step).ceil();
            if ratio.is_finite() && ratio >= 0.0 {
                ratio as usize
            } else {
                usize::MAX
            }
        }
        _ => 0,
    };
    Footprint {
        unknowns,
        est_nnz,
        declared_steps,
    }
}

/// Validates one `run` request end to end — deck size, parse, `.tran`
/// presence, per-job footprint budget, overload/degraded stage, in-flight
/// budget, id uniqueness — then enqueues it, replying `accepted`, `busy`,
/// `rejected` or an inline error. Returns whether the peer is still
/// reachable.
fn admit_run(shared: &Shared, writer: &Arc<ConnWriter>, run: RunRequest) -> bool {
    if run.deck.len() > shared.config.max_deck_bytes {
        return send(
            shared,
            writer,
            &Response::JobError {
                id: run.id,
                class: "usage".to_string(),
                message: format!(
                    "deck is {} bytes; this server accepts at most {}",
                    run.deck.len(),
                    shared.config.max_deck_bytes
                ),
            },
        );
    }
    // Parse at admission: the footprint budget needs the circuit, and a
    // worker should never burn queue time on unparseable input.
    let deck = match parse_deck(&run.deck) {
        Ok(deck) => deck,
        Err(e) => {
            lock(&shared.counters).jobs_failed += 1;
            return send(
                shared,
                writer,
                &Response::JobError {
                    id: run.id,
                    class: "parse".to_string(),
                    message: e.to_string(),
                },
            );
        }
    };
    let Some(analysis) = deck
        .analyses
        .iter()
        .find(|a| matches!(a, Analysis::Tran { .. }))
    else {
        lock(&shared.counters).jobs_failed += 1;
        return send(
            shared,
            writer,
            &Response::JobError {
                id: run.id,
                class: "usage".to_string(),
                message: "deck has no .tran card (exi-serve runs transient analyses only)"
                    .to_string(),
            },
        );
    };
    let footprint = estimate_footprint(&deck, analysis);
    let budget = &shared.config.budget;
    let over_budget = if footprint.unknowns > budget.max_unknowns {
        Some(format!(
            "deck has {} unknowns; this server admits at most {}",
            footprint.unknowns, budget.max_unknowns
        ))
    } else if footprint.est_nnz > budget.max_est_nnz {
        Some(format!(
            "deck has an estimated {} matrix nonzeros; this server admits at most {}",
            footprint.est_nnz, budget.max_est_nnz
        ))
    } else if footprint.declared_steps > budget.max_declared_steps {
        Some(format!(
            ".tran card declares {} steps; this server admits at most {}",
            footprint.declared_steps, budget.max_declared_steps
        ))
    } else {
        None
    };
    if let Some(message) = over_budget {
        lock(&shared.counters).jobs_rejected_budget += 1;
        return send(
            shared,
            writer,
            &Response::Rejected {
                id: run.id,
                reason: "budget".to_string(),
                message,
            },
        );
    }
    if shared.degraded.load(Ordering::SeqCst) && shared.live_workers.load(Ordering::SeqCst) == 0 {
        lock(&shared.counters).jobs_shed_overload += 1;
        return send(
            shared,
            writer,
            &Response::Rejected {
                id: run.id,
                reason: "degraded".to_string(),
                message: "no live workers and the respawn budget is exhausted".to_string(),
            },
        );
    }
    if shared.overload_stage.load(Ordering::SeqCst) >= 1 {
        lock(&shared.counters).jobs_shed_overload += 1;
        return send(
            shared,
            writer,
            &Response::Rejected {
                id: run.id,
                reason: "overload".to_string(),
                message: "the server is shedding load (queue saturated); retry later".to_string(),
            },
        );
    }
    let inflight_limit = shared.config.max_inflight_unknowns;
    if inflight_limit > 0 {
        let previous = shared
            .inflight_unknowns
            .fetch_add(footprint.unknowns, Ordering::SeqCst);
        if previous + footprint.unknowns > inflight_limit {
            shared
                .inflight_unknowns
                .fetch_sub(footprint.unknowns, Ordering::SeqCst);
            lock(&shared.counters).jobs_rejected_budget += 1;
            return send(
                shared,
                writer,
                &Response::Rejected {
                    id: run.id,
                    reason: "inflight".to_string(),
                    message: format!(
                        "{} in-flight unknowns + {} requested exceed the server budget {}",
                        previous, footprint.unknowns, inflight_limit
                    ),
                },
            );
        }
    }
    let deadline_ms = run.deadline_ms.or_else(|| {
        (shared.config.default_deadline_ms > 0).then_some(shared.config.default_deadline_ms)
    });
    let token = CancelToken::new();
    {
        let mut active = lock(&shared.active);
        if active.contains_key(&run.id) {
            drop(active);
            if inflight_limit > 0 {
                shared
                    .inflight_unknowns
                    .fetch_sub(footprint.unknowns, Ordering::SeqCst);
            }
            return send(
                shared,
                writer,
                &Response::JobError {
                    id: run.id,
                    class: "usage".to_string(),
                    message: "a job with this id is already active".to_string(),
                },
            );
        }
        active.insert(
            run.id.clone(),
            ActiveJob {
                token: token.clone(),
                unknowns: if inflight_limit > 0 {
                    footprint.unknowns
                } else {
                    0
                },
                started: None,
                has_deadline: deadline_ms.is_some(),
            },
        );
    }
    let job = Job {
        id: run.id.clone(),
        deck,
        method: run.method,
        probes: run.probes,
        decimate: run.decimate,
        chunk_rows: run.chunk_rows.unwrap_or(shared.config.default_chunk_rows),
        deadline: deadline_ms.map(Duration::from_millis),
        token,
        writer: Arc::clone(writer),
    };
    // Admission and the `accepted` reply happen under the writer lock so the
    // first `chunk` frame (sent by a worker through the same lock) can never
    // overtake the `accepted` frame.
    let (alive, outcome) = {
        let mut stream = writer.lock_stream();
        let outcome = shared.queue.try_push(job);
        let reply = match &outcome {
            Ok(depth) => Response::Accepted {
                id: run.id.clone(),
                queue_depth: *depth,
            },
            Err(PushError::Full) => Response::Busy {
                id: run.id.clone(),
                queue_capacity: shared.queue.capacity(),
            },
            Err(PushError::Closed) => Response::ShuttingDown,
        };
        let alive = writer
            .write_frame_with(&mut stream, &reply.to_json())
            .is_ok();
        drop(stream);
        (alive, outcome)
    };
    match outcome {
        Ok(_) => {
            lock(&shared.counters).jobs_accepted += 1;
        }
        Err(_) => {
            shared.release_job(&run.id);
            if matches!(outcome, Err(PushError::Full)) {
                lock(&shared.counters).jobs_rejected += 1;
            }
        }
    }
    alive
}

/// Streams accepted waveform points to the job's client as `chunk` frames —
/// the socket-backed [`Observer`].
///
/// Rows are formatted to 17 significant digits the moment they are accepted
/// and transported as strings, so the client materializes bytes identical to
/// a local [`exi_sim::CsvObserver`] run. Memory is bounded by
/// `chunk_rows × columns` regardless of run length, and `decimate` keeps
/// every `k`-th accepted record (the DC point is record 0 and always kept).
struct WireObserver<'a> {
    shared: &'a Shared,
    id: String,
    writer: &'a ConnWriter,
    probes: Vec<Probe>,
    /// Column labels, shipped with the first chunk then cleared.
    columns: Option<Vec<String>>,
    decimate: usize,
    chunk_rows: usize,
    seen: usize,
    rows_sent: usize,
    seq: usize,
    buffer: Vec<Vec<String>>,
    /// Latched on the first failed socket write; no further frames are
    /// attempted and the driver stops the job at the next step boundary.
    dead: bool,
}

impl<'a> WireObserver<'a> {
    fn new(
        shared: &'a Shared,
        id: String,
        writer: &'a ConnWriter,
        probes: Vec<Probe>,
        decimate: usize,
        chunk_rows: usize,
    ) -> Self {
        let mut columns = Vec::with_capacity(probes.len() + 1);
        columns.push("time".to_string());
        columns.extend(probes.iter().map(|p| p.label.clone()));
        WireObserver {
            shared,
            id,
            writer,
            probes,
            columns: Some(columns),
            decimate: decimate.max(1),
            chunk_rows: chunk_rows.max(1),
            seen: 0,
            rows_sent: 0,
            seq: 0,
            buffer: Vec::new(),
            dead: false,
        }
    }

    fn record(&mut self, t: f64, x: &[f64]) {
        let keep = self.seen.is_multiple_of(self.decimate);
        self.seen += 1;
        if !keep || self.dead {
            return;
        }
        let mut row = Vec::with_capacity(self.probes.len() + 1);
        row.push(format!("{t:.17e}"));
        for p in &self.probes {
            row.push(format!("{:.17e}", x[p.unknown]));
        }
        self.buffer.push(row);
        if self.buffer.len() >= self.chunk_rows {
            self.flush_chunk();
        }
    }

    /// Sends the buffered rows as one `chunk` frame (a no-op when empty).
    fn flush_chunk(&mut self) {
        if self.dead || self.buffer.is_empty() {
            return;
        }
        let rows = std::mem::take(&mut self.buffer);
        let sent = rows.len();
        let chunk = Response::Chunk {
            id: self.id.clone(),
            seq: self.seq,
            columns: self.columns.take(),
            rows,
        };
        if send(self.shared, self.writer, &chunk) {
            self.seq += 1;
            self.rows_sent += sent;
        } else {
            self.dead = true;
        }
    }
}

impl Observer for WireObserver<'_> {
    fn on_dc(&mut self, t0: f64, x0: &[f64]) {
        self.record(t0, x0);
    }

    fn on_step_accepted(&mut self, t: f64, x: &[f64]) {
        self.record(t, x);
    }

    fn on_finish(&mut self, _final_state: &[f64], _stats: &RunStats) {
        self.flush_chunk();
    }
}

/// Builds a failure reply in the `exi-cli` error taxonomy.
fn job_error(id: &str, class: &str, message: String) -> Response {
    Response::JobError {
        id: id.to_string(),
        class: class.to_string(),
        message,
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Runs one job end to end, shielded by `catch_unwind`: a panicking job is
/// attributed to its id as an `internal`-class error and the return value
/// tells the worker to retire (the supervisor replaces it). Reports the
/// terminal frame plus the server-side counter updates. Returns `true` when
/// the job panicked.
fn execute_job(shared: &Shared, job: Job) -> bool {
    if let Some(entry) = lock(&shared.active).get_mut(&job.id) {
        entry.started = Some(Instant::now());
    }
    // Match the batch executor's discipline: install the job's armed fault
    // (if the feature is on), shield the run, always uninstall.
    #[cfg(feature = "fault-injection")]
    exi_sim::fault::install(&job.id);
    let result = catch_unwind(AssertUnwindSafe(|| run_job(shared, &job)));
    #[cfg(feature = "fault-injection")]
    exi_sim::fault::uninstall();
    match result {
        Ok((reply, session_stats)) => {
            shared.release_job(&job.id);
            {
                let mut counters = lock(&shared.counters);
                if let Some(stats) = &session_stats {
                    counters.accepted_steps += stats.accepted_steps;
                    counters.symbolic_analyses += stats.symbolic_analyses;
                    counters.shared_symbolic_hits += stats.shared_symbolic_hits;
                    counters.plan_compilations += stats.plan_compilations;
                    counters.shared_plan_hits += stats.shared_plan_hits;
                }
                match reply {
                    Response::Done { .. } => counters.jobs_completed += 1,
                    Response::Cancelled { .. } => counters.jobs_cancelled += 1,
                    _ => counters.jobs_failed += 1,
                }
            }
            send(shared, &job.writer, &reply);
            false
        }
        Err(payload) => {
            shared.release_job(&job.id);
            lock(&shared.counters).jobs_failed += 1;
            let reply = job_error(
                &job.id,
                "internal",
                format!(
                    "worker panicked while running this job: {}",
                    panic_message(payload)
                ),
            );
            send(shared, &job.writer, &reply);
            true
        }
    }
}

/// The solver side of one job: build the shared-cache session over the
/// admission-parsed deck, drive the stepper with between-step cancellation
/// checks (the PR 6 contract — a cancelled job's streamed rows are a
/// bit-exact prefix of the uncancelled run), and stream through a
/// [`WireObserver`].
fn run_job(shared: &Shared, job: &Job) -> (Response, Option<RunStats>) {
    let deck = &job.deck;
    let Some(analysis) = deck
        .analyses
        .iter()
        .find(|a| matches!(a, Analysis::Tran { .. }))
    else {
        // Unreachable: admission requires a .tran card. Kept as a typed
        // error rather than a panic so a future admission change degrades
        // gracefully.
        return (
            job_error(
                &job.id,
                "usage",
                "deck has no .tran card (exi-serve runs transient analyses only)".to_string(),
            ),
            None,
        );
    };
    let options = analysis_options(deck, analysis).expect("transient card maps to options");
    let probe_names = deck.effective_probes(&job.probes);
    let probe_refs: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    let probes = match resolve_probes(&deck.circuit, &probe_refs) {
        Ok(probes) => probes,
        // Same class the CLI assigns to SimError (`CliError::Sim`).
        Err(e) => return (job_error(&job.id, "convergence", e.to_string()), None),
    };
    let mut sim = Simulator::with_shared_symbolic(&deck.circuit, Arc::clone(&shared.symbolic))
        .with_plan_cache(Arc::clone(&shared.plans));
    let mut observer = WireObserver::new(
        shared,
        job.id.clone(),
        &job.writer,
        probes,
        job.decimate,
        job.chunk_rows,
    );
    let deadline = job.deadline.map(|budget| Instant::now() + budget);
    let (outcome, stats) = {
        let mut stepper = match sim.stepper(job.method, &options) {
            Ok(stepper) => stepper,
            Err(e) => {
                let message = e.attributed(&deck.circuit).to_string();
                return (
                    job_error(&job.id, "convergence", message),
                    Some(sim.session_stats().clone()),
                );
            }
        };
        // Start (DC solve + `on_dc`) before the first cancellation check so
        // even a job cancelled on arrival streams its DC point.
        let outcome = match stepper.start(&mut observer) {
            Err(e) => Err(e),
            Ok(()) => loop {
                let cancel = if job.token.is_cancelled() {
                    Some(CancelReason::Token)
                } else if deadline.is_some_and(|limit| Instant::now() >= limit) {
                    Some(CancelReason::Deadline)
                } else if observer.dead {
                    // The client vanished; treat as a wire cancellation.
                    Some(CancelReason::Token)
                } else {
                    None
                };
                if let Some(reason) = cancel {
                    break Ok(Some((reason, stepper.time())));
                }
                match stepper.advance(&mut observer) {
                    Ok(StepOutcome::Finished) => break Ok(None),
                    Ok(_) => {}
                    Err(e) => break Err(e),
                }
            },
        };
        let stats = stepper.finish(&mut observer);
        (outcome, stats)
    };
    let reply = match outcome {
        Ok(None) => {
            sim.absorb_run(&stats);
            Response::Done {
                id: job.id.clone(),
                rows: observer.rows_sent,
                accepted_steps: stats.accepted_steps,
                symbolic_analyses: stats.symbolic_analyses,
                shared_symbolic_hits: stats.shared_symbolic_hits,
                plan_compilations: stats.plan_compilations,
                shared_plan_hits: stats.shared_plan_hits,
            }
        }
        Ok(Some((reason, at_time))) => {
            sim.absorb_partial(&stats);
            Response::Cancelled {
                id: job.id.clone(),
                reason: match reason {
                    CancelReason::Token => "token".to_string(),
                    CancelReason::Deadline => "deadline".to_string(),
                },
                at_time: format!("{at_time:.17e}"),
                rows: observer.rows_sent,
            }
        }
        Err(e) => {
            sim.absorb_partial(&stats);
            job_error(
                &job.id,
                "convergence",
                e.attributed(&deck.circuit).to_string(),
            )
        }
    };
    (reply, Some(sim.session_stats().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_bounded() {
        let config = ServeConfig::default();
        assert!(config.queue_capacity >= 1);
        assert!(config.max_deck_bytes <= config.max_frame_bytes);
        assert!(config.symbolic_cache_capacity.is_some());
        assert!(config.plan_cache_capacity.is_some());
        // The in-flight budget must admit at least one maximal job, and the
        // ladder thresholds must be ordered.
        assert!(config.max_inflight_unknowns >= config.budget.max_unknowns);
        assert!(config.overload.shed_after_ms <= config.overload.cancel_after_ms);
        assert!(config.overload.cancel_after_ms <= config.overload.drain_after_ms);
    }

    #[test]
    fn snapshot_reflects_counters_and_queue() {
        let server = Server::bind(ServeConfig {
            queue_capacity: 3,
            workers: 5,
            ..ServeConfig::default()
        })
        .unwrap();
        {
            let mut counters = lock(&server.shared.counters);
            counters.jobs_accepted = 4;
            counters.jobs_rejected = 1;
            counters.jobs_rejected_budget = 2;
            counters.workers_respawned = 1;
            counters.connections_reaped = 3;
            counters.write_stalls = 1;
            counters.accepted_steps = 99;
        }
        let snap = server.shared.snapshot();
        assert_eq!(snap.jobs_accepted, 4);
        assert_eq!(snap.jobs_rejected, 1);
        assert_eq!(snap.jobs_rejected_budget, 2);
        assert_eq!(snap.workers_respawned, 1);
        assert_eq!(snap.connections_reaped, 3);
        assert_eq!(snap.write_stalls, 1);
        assert_eq!(snap.accepted_steps, 99);
        assert_eq!(snap.queue_capacity, 3);
        assert_eq!(snap.workers, 5);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.overload_stage, 0);
    }

    #[test]
    fn ladder_stages_are_monotone_in_full_time() {
        let overload = OverloadConfig {
            shed_after_ms: 100,
            cancel_after_ms: 200,
            drain_after_ms: 400,
            soft_deadline_ms: 50,
        };
        assert_eq!(ladder_stage(None, &overload), 0);
        assert_eq!(ladder_stage(Some(Duration::from_millis(50)), &overload), 0);
        assert_eq!(ladder_stage(Some(Duration::from_millis(100)), &overload), 1);
        assert_eq!(ladder_stage(Some(Duration::from_millis(250)), &overload), 2);
        assert_eq!(ladder_stage(Some(Duration::from_millis(400)), &overload), 3);
        assert_eq!(ladder_stage(Some(Duration::from_secs(9999)), &overload), 3);
    }

    #[test]
    fn footprint_estimates_scale_with_the_deck() {
        let deck =
            parse_deck("V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1f\n.tran 1p 100p\n.print v(out)\n")
                .expect("parse");
        let analysis = deck
            .analyses
            .iter()
            .find(|a| matches!(a, Analysis::Tran { .. }))
            .expect("tran");
        let footprint = estimate_footprint(&deck, analysis);
        assert_eq!(footprint.unknowns, deck.circuit.num_unknowns());
        assert_eq!(footprint.declared_steps, 100);
        assert!(footprint.est_nnz >= footprint.unknowns);
    }

    #[test]
    fn timed_reader_parses_split_and_back_to_back_frames() {
        // A loopback socket pair exercises the real read path.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut reader = TimedFrameReader::new(server_side, 1_000, 1_000);
        use std::io::Write as _;
        // Two frames in one burst, the second split across writes.
        client.write_all(b"4\nping\n7\npa").unwrap();
        client.flush().unwrap();
        match reader.read_event(1024) {
            ReadEvent::Frame(frame) => assert_eq!(frame, "ping"),
            _ => panic!("expected first frame"),
        }
        client.write_all(b"rtial\n").unwrap();
        client.flush().unwrap();
        match reader.read_event(1024) {
            ReadEvent::Frame(frame) => assert_eq!(frame, "partial"),
            _ => panic!("expected second frame"),
        }
        drop(client);
        assert!(matches!(reader.read_event(1024), ReadEvent::Eof));
    }

    #[test]
    fn timed_reader_reaps_a_stalled_len_line() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        // 60 ms frame deadline, idle disabled: a partial length line with no
        // newline must be reaped, not buffered forever.
        let mut reader = TimedFrameReader::new(server_side, 60, 0);
        use std::io::Write as _;
        client.write_all(b"12").unwrap();
        client.flush().unwrap();
        let started = Instant::now();
        assert!(matches!(reader.read_event(1024), ReadEvent::Reaped));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "reap happens promptly"
        );
    }
}
