//! The resident daemon: accept loop, connection handlers, the worker pool
//! and the socket-backed streaming [`Observer`].
//!
//! # Lifecycle
//!
//! [`Server::bind`] opens the listener; [`Server::run`] blocks in the accept
//! loop until a `shutdown` request arrives over any connection. Each
//! connection gets a handler thread that parses request frames and replies
//! inline to everything except `run`, which it admits to the bounded
//! [`JobQueue`] (or bounces with `busy`). A fixed pool of worker threads
//! drains the queue; every worker session is constructed with
//! [`Simulator::with_shared_symbolic`] and [`Simulator::with_plan_cache`]
//! over the server's two warm caches, so jobs sharing a circuit fingerprint
//! perform exactly one symbolic analysis and one plan compilation
//! server-wide, however many clients submit them.
//!
//! # Shutdown
//!
//! A `shutdown` request closes the queue (workers drain every already-queued
//! job before exiting) and half-closes the read side of every open
//! connection, which unblocks the handler threads without disturbing the
//! write side — a client whose job is still running keeps receiving chunks
//! until its final `done` frame.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use exi_netlist::{parse_deck, Analysis};
use exi_sim::{
    analysis_options, resolve_probes, CancelReason, CancelToken, Engine, Method, Observer,
    PlanCache, Probe, RunStats, Simulator, StepOutcome,
};
use exi_sparse::SymbolicCache;

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response, RunRequest};
use crate::queue::{JobQueue, PushError};
use crate::stats::ServerStats;

/// Settings of one daemon instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Job-queue capacity; a full queue bounces `run` requests with `busy`.
    pub queue_capacity: usize,
    /// Maximum accepted frame payload in bytes (a larger declared length is
    /// a protocol error and closes the connection).
    pub max_frame_bytes: usize,
    /// Maximum accepted deck text in bytes (a larger deck is rejected with a
    /// `usage`-class error; the connection stays open).
    pub max_deck_bytes: usize,
    /// Warm symbolic-cache capacity (`None` = unbounded).
    pub symbolic_cache_capacity: Option<usize>,
    /// Warm plan-cache capacity (`None` = unbounded).
    pub plan_cache_capacity: Option<usize>,
    /// Rows per `chunk` frame when the request does not choose its own.
    pub default_chunk_rows: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            max_frame_bytes: crate::protocol::DEFAULT_MAX_FRAME_BYTES,
            max_deck_bytes: 256 * 1024,
            symbolic_cache_capacity: Some(64),
            plan_cache_capacity: Some(64),
            default_chunk_rows: 64,
        }
    }
}

/// Lifetime job counters, maintained under one lock so a `stats` snapshot is
/// internally consistent.
#[derive(Debug, Default)]
struct Counters {
    jobs_accepted: u64,
    jobs_completed: u64,
    jobs_failed: u64,
    jobs_cancelled: u64,
    jobs_rejected: u64,
    accepted_steps: usize,
    symbolic_analyses: usize,
    shared_symbolic_hits: usize,
    plan_compilations: usize,
    shared_plan_hits: usize,
}

/// One admitted `run` request, queued for a worker.
struct Job {
    id: String,
    deck_text: String,
    method: Method,
    probes: Vec<String>,
    decimate: usize,
    chunk_rows: usize,
    deadline: Option<Duration>,
    token: CancelToken,
    writer: Arc<Mutex<TcpStream>>,
}

/// State shared by the accept loop, handlers and workers.
struct Shared {
    config: ServeConfig,
    queue: JobQueue<Job>,
    symbolic: Arc<SymbolicCache>,
    plans: Arc<PlanCache>,
    counters: Mutex<Counters>,
    /// Active (queued or running) jobs by id — the cancel registry.
    active: Mutex<HashMap<String, CancelToken>>,
    /// Read-half handles of open connections, half-closed at shutdown to
    /// unblock handler threads.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection: AtomicU64,
    shutdown: AtomicBool,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Shared {
    fn snapshot(&self) -> ServerStats {
        let counters = lock(&self.counters);
        ServerStats {
            jobs_accepted: counters.jobs_accepted,
            jobs_completed: counters.jobs_completed,
            jobs_failed: counters.jobs_failed,
            jobs_cancelled: counters.jobs_cancelled,
            jobs_rejected: counters.jobs_rejected,
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
            workers: self.config.workers,
            accepted_steps: counters.accepted_steps,
            symbolic_analyses: counters.symbolic_analyses,
            shared_symbolic_hits: counters.shared_symbolic_hits,
            plan_compilations: counters.plan_compilations,
            shared_plan_hits: counters.shared_plan_hits,
            symbolic_cache: self.symbolic.stats(),
            plan_cache: self.plans.stats(),
        }
    }

    /// Stops accepting work and unblocks every thread: future pushes fail,
    /// workers drain the backlog, handlers see EOF on their read half.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        for conn in lock(&self.connections).values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }
}

/// Serializes and writes one response frame; returns whether the peer is
/// still reachable.
fn send(writer: &Mutex<TcpStream>, response: &Response) -> bool {
    let json = response.to_json();
    let mut stream = lock(writer);
    write_frame(&mut *stream, &json).is_ok()
}

/// The daemon. [`bind`](Server::bind) it, read
/// [`local_addr`](Server::local_addr), then [`run`](Server::run) it (usually
/// on its own thread); `run` returns the final [`ServerStats`] once a
/// `shutdown` request has drained the fleet.
pub struct Server {
    listener: TcpListener,
    shared: Shared,
}

impl Server {
    /// Binds the listen socket and builds the warm caches.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let symbolic = Arc::new(match config.symbolic_cache_capacity {
            Some(n) => SymbolicCache::with_capacity(n),
            None => SymbolicCache::new(),
        });
        let plans = Arc::new(match config.plan_cache_capacity {
            Some(n) => PlanCache::with_capacity(n),
            None => PlanCache::new(),
        });
        let queue = JobQueue::new(config.queue_capacity);
        Ok(Server {
            listener,
            shared: Shared {
                config,
                queue,
                symbolic,
                plans,
                counters: Mutex::new(Counters::default()),
                active: Mutex::new(HashMap::new()),
                connections: Mutex::new(HashMap::new()),
                next_connection: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            },
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures of the socket.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon until a `shutdown` request arrives, then drains
    /// in-flight jobs and returns the final statistics snapshot.
    pub fn run(self) -> ServerStats {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.config.workers.max(1) {
                scope.spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        execute_job(shared, job);
                    }
                });
            }
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || handle_connection(shared, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // Defensive: if the loop exited for any reason other than a
            // shutdown request, release the workers anyway.
            shared.queue.close();
        });
        shared.snapshot()
    }
}

/// One connection's request loop. Exits on EOF, I/O failure, protocol
/// violation (after a `protocol_error` reply) or server shutdown.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(registered) = stream.try_clone() else {
        return;
    };
    let connection_id = shared.next_connection.fetch_add(1, Ordering::Relaxed);
    lock(&shared.connections).insert(connection_id, registered);
    // Close the race with a shutdown that began while we were registering:
    // from here on, `begin_shutdown` reaches this connection via the map.
    if shared.shutdown.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Read);
    }
    let mut reader = BufReader::new(read_half);
    let writer = Arc::new(Mutex::new(stream));
    loop {
        let frame = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(FrameError::Io(_)) => break,
            Err(e @ (FrameError::Malformed(_) | FrameError::Oversized { .. })) => {
                send(
                    &writer,
                    &Response::ProtocolError {
                        message: e.to_string(),
                    },
                );
                break;
            }
        };
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(message) => {
                send(&writer, &Response::ProtocolError { message });
                break;
            }
        };
        match request {
            Request::Ping => {
                if !send(&writer, &Response::Pong) {
                    break;
                }
            }
            Request::Stats => {
                if !send(&writer, &Response::Stats(shared.snapshot())) {
                    break;
                }
            }
            Request::Cancel { id } => {
                let known = match lock(&shared.active).get(&id) {
                    Some(token) => {
                        token.cancel();
                        true
                    }
                    None => false,
                };
                if !send(&writer, &Response::CancelAck { id, known }) {
                    break;
                }
            }
            Request::Shutdown => {
                send(&writer, &Response::ShuttingDown);
                shared.begin_shutdown();
                break;
            }
            Request::Run(run) => {
                if !admit_run(shared, &writer, run) {
                    break;
                }
            }
        }
    }
    lock(&shared.connections).remove(&connection_id);
}

/// Validates and enqueues one `run` request, replying `accepted`, `busy` or
/// an inline error. Returns whether the peer is still reachable.
fn admit_run(shared: &Shared, writer: &Arc<Mutex<TcpStream>>, run: RunRequest) -> bool {
    if run.deck.len() > shared.config.max_deck_bytes {
        return send(
            writer,
            &Response::JobError {
                id: run.id,
                class: "usage".to_string(),
                message: format!(
                    "deck is {} bytes; this server accepts at most {}",
                    run.deck.len(),
                    shared.config.max_deck_bytes
                ),
            },
        );
    }
    let token = CancelToken::new();
    {
        let mut active = lock(&shared.active);
        if active.contains_key(&run.id) {
            drop(active);
            return send(
                writer,
                &Response::JobError {
                    id: run.id,
                    class: "usage".to_string(),
                    message: "a job with this id is already active".to_string(),
                },
            );
        }
        active.insert(run.id.clone(), token.clone());
    }
    let job = Job {
        id: run.id.clone(),
        deck_text: run.deck,
        method: run.method,
        probes: run.probes,
        decimate: run.decimate,
        chunk_rows: run.chunk_rows.unwrap_or(shared.config.default_chunk_rows),
        deadline: run.deadline_ms.map(Duration::from_millis),
        token,
        writer: Arc::clone(writer),
    };
    // Admission and the `accepted` reply happen under the writer lock so the
    // first `chunk` frame (sent by a worker through the same lock) can never
    // overtake the `accepted` frame.
    let (alive, outcome) = {
        let mut stream = lock(writer);
        let outcome = shared.queue.try_push(job);
        let reply = match &outcome {
            Ok(depth) => Response::Accepted {
                id: run.id.clone(),
                queue_depth: *depth,
            },
            Err(PushError::Full) => Response::Busy {
                id: run.id.clone(),
                queue_capacity: shared.queue.capacity(),
            },
            Err(PushError::Closed) => Response::ShuttingDown,
        };
        let alive = write_frame(&mut *stream, &reply.to_json()).is_ok();
        drop(stream);
        (alive, outcome)
    };
    match outcome {
        Ok(_) => {
            lock(&shared.counters).jobs_accepted += 1;
        }
        Err(_) => {
            lock(&shared.active).remove(&run.id);
            if matches!(outcome, Err(PushError::Full)) {
                lock(&shared.counters).jobs_rejected += 1;
            }
        }
    }
    alive
}

/// Streams accepted waveform points to the job's client as `chunk` frames —
/// the socket-backed [`Observer`].
///
/// Rows are formatted to 17 significant digits the moment they are accepted
/// and transported as strings, so the client materializes bytes identical to
/// a local [`exi_sim::CsvObserver`] run. Memory is bounded by
/// `chunk_rows × columns` regardless of run length, and `decimate` keeps
/// every `k`-th accepted record (the DC point is record 0 and always kept).
struct WireObserver {
    id: String,
    writer: Arc<Mutex<TcpStream>>,
    probes: Vec<Probe>,
    /// Column labels, shipped with the first chunk then cleared.
    columns: Option<Vec<String>>,
    decimate: usize,
    chunk_rows: usize,
    seen: usize,
    rows_sent: usize,
    seq: usize,
    buffer: Vec<Vec<String>>,
    /// Latched on the first failed socket write; no further frames are
    /// attempted and the driver stops the job at the next step boundary.
    dead: bool,
}

impl WireObserver {
    fn new(
        id: String,
        writer: Arc<Mutex<TcpStream>>,
        probes: Vec<Probe>,
        decimate: usize,
        chunk_rows: usize,
    ) -> Self {
        let mut columns = Vec::with_capacity(probes.len() + 1);
        columns.push("time".to_string());
        columns.extend(probes.iter().map(|p| p.label.clone()));
        WireObserver {
            id,
            writer,
            probes,
            columns: Some(columns),
            decimate: decimate.max(1),
            chunk_rows: chunk_rows.max(1),
            seen: 0,
            rows_sent: 0,
            seq: 0,
            buffer: Vec::new(),
            dead: false,
        }
    }

    fn record(&mut self, t: f64, x: &[f64]) {
        let keep = self.seen.is_multiple_of(self.decimate);
        self.seen += 1;
        if !keep || self.dead {
            return;
        }
        let mut row = Vec::with_capacity(self.probes.len() + 1);
        row.push(format!("{t:.17e}"));
        for p in &self.probes {
            row.push(format!("{:.17e}", x[p.unknown]));
        }
        self.buffer.push(row);
        if self.buffer.len() >= self.chunk_rows {
            self.flush_chunk();
        }
    }

    /// Sends the buffered rows as one `chunk` frame (a no-op when empty).
    fn flush_chunk(&mut self) {
        if self.dead || self.buffer.is_empty() {
            return;
        }
        let rows = std::mem::take(&mut self.buffer);
        let sent = rows.len();
        let chunk = Response::Chunk {
            id: self.id.clone(),
            seq: self.seq,
            columns: self.columns.take(),
            rows,
        };
        if send(&self.writer, &chunk) {
            self.seq += 1;
            self.rows_sent += sent;
        } else {
            self.dead = true;
        }
    }
}

impl Observer for WireObserver {
    fn on_dc(&mut self, t0: f64, x0: &[f64]) {
        self.record(t0, x0);
    }

    fn on_step_accepted(&mut self, t: f64, x: &[f64]) {
        self.record(t, x);
    }

    fn on_finish(&mut self, _final_state: &[f64], _stats: &RunStats) {
        self.flush_chunk();
    }
}

/// Builds a failure reply in the `exi-cli` error taxonomy.
fn job_error(id: &str, class: &str, message: String) -> Response {
    Response::JobError {
        id: id.to_string(),
        class: class.to_string(),
        message,
    }
}

/// Runs one job end to end and reports its terminal frame plus the
/// server-side counter updates.
fn execute_job(shared: &Shared, job: Job) {
    let (reply, session_stats) = run_job(shared, &job);
    lock(&shared.active).remove(&job.id);
    {
        let mut counters = lock(&shared.counters);
        if let Some(stats) = &session_stats {
            counters.accepted_steps += stats.accepted_steps;
            counters.symbolic_analyses += stats.symbolic_analyses;
            counters.shared_symbolic_hits += stats.shared_symbolic_hits;
            counters.plan_compilations += stats.plan_compilations;
            counters.shared_plan_hits += stats.shared_plan_hits;
        }
        match reply {
            Response::Done { .. } => counters.jobs_completed += 1,
            Response::Cancelled { .. } => counters.jobs_cancelled += 1,
            _ => counters.jobs_failed += 1,
        }
    }
    send(&job.writer, &reply);
}

/// The solver side of one job: parse, build the shared-cache session, drive
/// the stepper with between-step cancellation checks (the PR 6 contract —
/// a cancelled job's streamed rows are a bit-exact prefix of the uncancelled
/// run), and stream through a [`WireObserver`].
fn run_job(shared: &Shared, job: &Job) -> (Response, Option<RunStats>) {
    let deck = match parse_deck(&job.deck_text) {
        Ok(deck) => deck,
        Err(e) => return (job_error(&job.id, "parse", e.to_string()), None),
    };
    let Some(analysis) = deck
        .analyses
        .iter()
        .find(|a| matches!(a, Analysis::Tran { .. }))
    else {
        return (
            job_error(
                &job.id,
                "usage",
                "deck has no .tran card (exi-serve runs transient analyses only)".to_string(),
            ),
            None,
        );
    };
    let options = analysis_options(&deck, analysis).expect("transient card maps to options");
    let probe_names = deck.effective_probes(&job.probes);
    let probe_refs: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    let probes = match resolve_probes(&deck.circuit, &probe_refs) {
        Ok(probes) => probes,
        // Same class the CLI assigns to SimError (`CliError::Sim`).
        Err(e) => return (job_error(&job.id, "convergence", e.to_string()), None),
    };
    let mut sim = Simulator::with_shared_symbolic(&deck.circuit, Arc::clone(&shared.symbolic))
        .with_plan_cache(Arc::clone(&shared.plans));
    let mut observer = WireObserver::new(
        job.id.clone(),
        Arc::clone(&job.writer),
        probes,
        job.decimate,
        job.chunk_rows,
    );
    let deadline = job.deadline.map(|budget| Instant::now() + budget);
    let (outcome, stats) = {
        let mut stepper = match sim.stepper(job.method, &options) {
            Ok(stepper) => stepper,
            Err(e) => {
                let message = e.attributed(&deck.circuit).to_string();
                return (
                    job_error(&job.id, "convergence", message),
                    Some(sim.session_stats().clone()),
                );
            }
        };
        // Start (DC solve + `on_dc`) before the first cancellation check so
        // even a job cancelled on arrival streams its DC point.
        let outcome = match stepper.start(&mut observer) {
            Err(e) => Err(e),
            Ok(()) => loop {
                let cancel = if job.token.is_cancelled() {
                    Some(CancelReason::Token)
                } else if deadline.is_some_and(|limit| Instant::now() >= limit) {
                    Some(CancelReason::Deadline)
                } else if observer.dead {
                    // The client vanished; treat as a wire cancellation.
                    Some(CancelReason::Token)
                } else {
                    None
                };
                if let Some(reason) = cancel {
                    break Ok(Some((reason, stepper.time())));
                }
                match stepper.advance(&mut observer) {
                    Ok(StepOutcome::Finished) => break Ok(None),
                    Ok(_) => {}
                    Err(e) => break Err(e),
                }
            },
        };
        let stats = stepper.finish(&mut observer);
        (outcome, stats)
    };
    let reply = match outcome {
        Ok(None) => {
            sim.absorb_run(&stats);
            Response::Done {
                id: job.id.clone(),
                rows: observer.rows_sent,
                accepted_steps: stats.accepted_steps,
                symbolic_analyses: stats.symbolic_analyses,
                shared_symbolic_hits: stats.shared_symbolic_hits,
                plan_compilations: stats.plan_compilations,
                shared_plan_hits: stats.shared_plan_hits,
            }
        }
        Ok(Some((reason, at_time))) => {
            sim.absorb_partial(&stats);
            Response::Cancelled {
                id: job.id.clone(),
                reason: match reason {
                    CancelReason::Token => "token".to_string(),
                    CancelReason::Deadline => "deadline".to_string(),
                },
                at_time: format!("{at_time:.17e}"),
                rows: observer.rows_sent,
            }
        }
        Err(e) => {
            sim.absorb_partial(&stats);
            job_error(
                &job.id,
                "convergence",
                e.attributed(&deck.circuit).to_string(),
            )
        }
    };
    (reply, Some(sim.session_stats().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_bounded() {
        let config = ServeConfig::default();
        assert!(config.queue_capacity >= 1);
        assert!(config.max_deck_bytes <= config.max_frame_bytes);
        assert!(config.symbolic_cache_capacity.is_some());
        assert!(config.plan_cache_capacity.is_some());
    }

    #[test]
    fn snapshot_reflects_counters_and_queue() {
        let server = Server::bind(ServeConfig {
            queue_capacity: 3,
            workers: 5,
            ..ServeConfig::default()
        })
        .unwrap();
        {
            let mut counters = lock(&server.shared.counters);
            counters.jobs_accepted = 4;
            counters.jobs_rejected = 1;
            counters.accepted_steps = 99;
        }
        let snap = server.shared.snapshot();
        assert_eq!(snap.jobs_accepted, 4);
        assert_eq!(snap.jobs_rejected, 1);
        assert_eq!(snap.accepted_steps, 99);
        assert_eq!(snap.queue_capacity, 3);
        assert_eq!(snap.workers, 5);
        assert_eq!(snap.queue_depth, 0);
    }
}
