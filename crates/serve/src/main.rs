//! The `exi-serve` binary: parse flags, bind, announce the address, run
//! until a `shutdown` request drains the fleet, then print the final stats.

use std::process::ExitCode;

use exi_serve::{ServeConfig, Server};

const USAGE: &str = "\
exi-serve - resident simulation service for exi-sim

USAGE:
    exi-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT      listen address (default 127.0.0.1:0; port 0 picks
                          a free port, printed on stdout at startup)
    --workers N           worker threads draining the job queue (default 2)
    --queue N             job-queue capacity; further submissions get a
                          `busy` reply (default 16)
    --chunk-rows N        default waveform rows per chunk frame (default 64)
    --max-frame-bytes N   largest accepted frame payload (default 1048576)
    --max-deck-bytes N    largest accepted deck text (default 262144)
    --symbolic-cache N    warm symbolic-cache capacity; 0 = unbounded
                          (default 64)
    --plan-cache N        warm plan-cache capacity; 0 = unbounded
                          (default 64)
    -h, --help            print this help

The daemon exits after a client sends a `shutdown` request (see
docs/SERVICE.md for the wire protocol; `exi-cli client` is the reference
client).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_flags(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("exi-serve: {message}");
            eprintln!("Try 'exi-serve --help'.");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("exi-serve: bind failed: {e}");
            return ExitCode::from(5);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("exi-serve listening on {addr}"),
        Err(e) => {
            eprintln!("exi-serve: cannot read bound address: {e}");
            return ExitCode::from(5);
        }
    }
    let stats = server.run();
    println!(
        "exi-serve: drained and stopped — {} completed, {} failed, {} cancelled, {} rejected; \
         {} symbolic analyses + {} warm hits, {} plan compilations + {} warm hits",
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_cancelled,
        stats.jobs_rejected,
        stats.symbolic_analyses,
        stats.shared_symbolic_hits,
        stats.plan_compilations,
        stats.shared_plan_hits,
    );
    ExitCode::SUCCESS
}

/// Parses the flag list; `Ok(None)` means help was requested.
fn parse_flags(args: &[String]) -> Result<Option<ServeConfig>, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = parse_count(&value("--workers")?, "--workers")?.max(1),
            "--queue" => config.queue_capacity = parse_count(&value("--queue")?, "--queue")?.max(1),
            "--chunk-rows" => {
                config.default_chunk_rows =
                    parse_count(&value("--chunk-rows")?, "--chunk-rows")?.max(1)
            }
            "--max-frame-bytes" => {
                config.max_frame_bytes =
                    parse_count(&value("--max-frame-bytes")?, "--max-frame-bytes")?.max(1024)
            }
            "--max-deck-bytes" => {
                config.max_deck_bytes =
                    parse_count(&value("--max-deck-bytes")?, "--max-deck-bytes")?.max(1)
            }
            "--symbolic-cache" => {
                let n = parse_count(&value("--symbolic-cache")?, "--symbolic-cache")?;
                config.symbolic_cache_capacity = (n > 0).then_some(n);
            }
            "--plan-cache" => {
                let n = parse_count(&value("--plan-cache")?, "--plan-cache")?;
                config.plan_cache_capacity = (n > 0).then_some(n);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(Some(config))
}

fn parse_count(text: &str, flag: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("{flag}: '{text}' is not a non-negative integer"))
}
