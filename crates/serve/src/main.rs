//! The `exi-serve` binary: parse flags, bind, announce the address, run
//! until a `shutdown` request drains the fleet, then print the final stats.

use std::process::ExitCode;

use exi_serve::{ServeConfig, Server};

const USAGE: &str = "\
exi-serve - resident simulation service for exi-sim

USAGE:
    exi-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT      listen address (default 127.0.0.1:0; port 0 picks
                          a free port, printed on stdout at startup)
    --workers N           worker threads draining the job queue (default 2)
    --queue N             job-queue capacity; further submissions get a
                          `busy` reply (default 16)
    --chunk-rows N        default waveform rows per chunk frame (default 64)
    --max-frame-bytes N   largest accepted frame payload (default 1048576)
    --max-deck-bytes N    largest accepted deck text (default 262144)
    --symbolic-cache N    warm symbolic-cache capacity; 0 = unbounded
                          (default 64)
    --plan-cache N        warm plan-cache capacity; 0 = unbounded
                          (default 64)

  Admission control (see docs/SERVICE.md, 'Limits & admission'):
    --max-unknowns N          per-job unknown-count budget (default 200000)
    --max-est-nnz N           per-job estimated-nonzeros budget
                              (default 8000000)
    --max-declared-steps N    per-job declared .tran step budget
                              (default 10000000)
    --max-inflight-unknowns N server-wide active-unknowns budget; 0 = off
                              (default 1000000)
    --default-deadline-ms N   deadline applied to jobs that declare none;
                              0 = off (default 600000)

  Connection robustness:
    --read-timeout-ms N   reap a connection whose started frame stalls this
                          long; 0 = off (default 10000)
    --idle-timeout-ms N   reap a connection idle between frames this long;
                          0 = off (default 300000)
    --write-stall-ms N    abandon a frame write blocked this long on a
                          stalled client; 0 = off (default 30000)

  Supervision & overload (see docs/SERVICE.md, 'Overload ladder'):
    --respawn-limit N     worker respawns allowed per window before degraded
                          mode (default 8)
    --respawn-window-ms N the sliding respawn window (default 60000)
    --shed-after-ms N     queue-full time before new decks are shed
                          (default 30000)
    --cancel-after-ms N   queue-full time before running jobs past the soft
                          deadline are cancelled (default 60000)
    --drain-after-ms N    queue-full time before all running jobs are
                          cancelled (default 120000)
    --soft-deadline-ms N  minimum runtime before a job is an overload victim
                          (default 10000)

    --arm-fault LABEL=KIND:ARGS
                          (builds with --features fault-injection only)
                          arm a deterministic solver fault for the job with
                          id LABEL; KIND:ARGS is one of
                            panic_at_step:N   panic before accepted step N
                            singular:EVAL,U   zero row/col U at evaluation EVAL
                            nan:EVAL,I        NaN into f[I] at evaluation EVAL
                            krylov:N          basis breakdown at build N
                          (repeatable; counters are 1-based)
    -h, --help            print this help

The daemon exits after a client sends a `shutdown` request (see
docs/SERVICE.md for the wire protocol; `exi-cli client` is the reference
client).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_flags(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("exi-serve: {message}");
            eprintln!("Try 'exi-serve --help'.");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("exi-serve: bind failed: {e}");
            return ExitCode::from(5);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("exi-serve listening on {addr}"),
        Err(e) => {
            eprintln!("exi-serve: cannot read bound address: {e}");
            return ExitCode::from(5);
        }
    }
    let stats = server.run();
    println!(
        "exi-serve: drained and stopped — {} completed, {} failed, {} cancelled, {} rejected; \
         {} symbolic analyses + {} warm hits, {} plan compilations + {} warm hits",
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_cancelled,
        stats.jobs_rejected,
        stats.symbolic_analyses,
        stats.shared_symbolic_hits,
        stats.plan_compilations,
        stats.shared_plan_hits,
    );
    ExitCode::SUCCESS
}

/// Parses the flag list; `Ok(None)` means help was requested. `--arm-fault`
/// arms its fault as a side effect (the armed map is process-global and the
/// server reads it per job id).
fn parse_flags(args: &[String]) -> Result<Option<ServeConfig>, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = parse_count(&value("--workers")?, "--workers")?.max(1),
            "--queue" => config.queue_capacity = parse_count(&value("--queue")?, "--queue")?.max(1),
            "--chunk-rows" => {
                config.default_chunk_rows =
                    parse_count(&value("--chunk-rows")?, "--chunk-rows")?.max(1)
            }
            "--max-frame-bytes" => {
                config.max_frame_bytes =
                    parse_count(&value("--max-frame-bytes")?, "--max-frame-bytes")?.max(1024)
            }
            "--max-deck-bytes" => {
                config.max_deck_bytes =
                    parse_count(&value("--max-deck-bytes")?, "--max-deck-bytes")?.max(1)
            }
            "--symbolic-cache" => {
                let n = parse_count(&value("--symbolic-cache")?, "--symbolic-cache")?;
                config.symbolic_cache_capacity = (n > 0).then_some(n);
            }
            "--plan-cache" => {
                let n = parse_count(&value("--plan-cache")?, "--plan-cache")?;
                config.plan_cache_capacity = (n > 0).then_some(n);
            }
            "--max-unknowns" => {
                config.budget.max_unknowns =
                    parse_count(&value("--max-unknowns")?, "--max-unknowns")?.max(1)
            }
            "--max-est-nnz" => {
                config.budget.max_est_nnz =
                    parse_count(&value("--max-est-nnz")?, "--max-est-nnz")?.max(1)
            }
            "--max-declared-steps" => {
                config.budget.max_declared_steps =
                    parse_count(&value("--max-declared-steps")?, "--max-declared-steps")?.max(1)
            }
            "--max-inflight-unknowns" => {
                config.max_inflight_unknowns = parse_count(
                    &value("--max-inflight-unknowns")?,
                    "--max-inflight-unknowns",
                )?
            }
            "--default-deadline-ms" => {
                config.default_deadline_ms =
                    parse_ms(&value("--default-deadline-ms")?, "--default-deadline-ms")?
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms =
                    parse_ms(&value("--read-timeout-ms")?, "--read-timeout-ms")?
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms =
                    parse_ms(&value("--idle-timeout-ms")?, "--idle-timeout-ms")?
            }
            "--write-stall-ms" => {
                config.write_stall_ms = parse_ms(&value("--write-stall-ms")?, "--write-stall-ms")?
            }
            "--respawn-limit" => {
                config.respawn_limit =
                    parse_count(&value("--respawn-limit")?, "--respawn-limit")?.max(1)
            }
            "--respawn-window-ms" => {
                config.respawn_window_ms =
                    parse_ms(&value("--respawn-window-ms")?, "--respawn-window-ms")?.max(1)
            }
            "--shed-after-ms" => {
                config.overload.shed_after_ms =
                    parse_ms(&value("--shed-after-ms")?, "--shed-after-ms")?.max(1)
            }
            "--cancel-after-ms" => {
                config.overload.cancel_after_ms =
                    parse_ms(&value("--cancel-after-ms")?, "--cancel-after-ms")?.max(1)
            }
            "--drain-after-ms" => {
                config.overload.drain_after_ms =
                    parse_ms(&value("--drain-after-ms")?, "--drain-after-ms")?.max(1)
            }
            "--soft-deadline-ms" => {
                config.overload.soft_deadline_ms =
                    parse_ms(&value("--soft-deadline-ms")?, "--soft-deadline-ms")?
            }
            "--arm-fault" => arm_fault(&value("--arm-fault")?)?,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if config.overload.shed_after_ms > config.overload.cancel_after_ms
        || config.overload.cancel_after_ms > config.overload.drain_after_ms
    {
        return Err(
            "overload thresholds must be ordered: shed-after <= cancel-after <= drain-after"
                .to_string(),
        );
    }
    Ok(Some(config))
}

fn parse_count(text: &str, flag: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("{flag}: '{text}' is not a non-negative integer"))
}

fn parse_ms(text: &str, flag: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|_| format!("{flag}: '{text}' is not a non-negative integer"))
}

/// Arms one `--arm-fault LABEL=KIND:ARGS` solver fault.
#[cfg(feature = "fault-injection")]
fn arm_fault(text: &str) -> Result<(), String> {
    use exi_sim::fault::{self, FaultSpec};
    let bad = || format!("--arm-fault: '{text}' is not LABEL=KIND:ARGS");
    let (label, kind_args) = text.split_once('=').ok_or_else(bad)?;
    let (kind, args) = kind_args.split_once(':').ok_or_else(bad)?;
    let one = |s: &str| s.parse::<usize>().map_err(|_| bad());
    let two = |s: &str| -> Result<(usize, usize), String> {
        let (a, b) = s.split_once(',').ok_or_else(bad)?;
        Ok((one(a)?, one(b)?))
    };
    let spec = match kind {
        "panic_at_step" => FaultSpec {
            panic_at_step: Some(one(args)?),
            ..FaultSpec::default()
        },
        "singular" => FaultSpec {
            singular_unknown: Some(two(args)?),
            ..FaultSpec::default()
        },
        "nan" => FaultSpec {
            nan_f: Some(two(args)?),
            ..FaultSpec::default()
        },
        "krylov" => FaultSpec {
            krylov_breakdown: Some(one(args)?),
            ..FaultSpec::default()
        },
        _ => return Err(bad()),
    };
    fault::arm(label, spec);
    Ok(())
}

#[cfg(not(feature = "fault-injection"))]
fn arm_fault(_text: &str) -> Result<(), String> {
    Err("--arm-fault requires a build with --features fault-injection".to_string())
}
