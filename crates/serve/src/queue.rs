//! The bounded FIFO job queue feeding the worker pool.
//!
//! Backpressure is explicit: [`JobQueue::try_push`] never blocks — a full
//! queue returns [`PushError::Full`] and the server bounces the request with
//! a `busy` reply instead of letting producers pile up. Consumers block in
//! [`JobQueue::pop`], which returns `None` only once the queue is **closed
//! and drained**, giving graceful shutdown its in-flight-jobs-complete
//! guarantee for free.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`JobQueue::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` jobs; the caller should reply `busy`.
    Full,
    /// The queue was closed (server shutting down); no work is accepted.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO with close-and-drain
/// shutdown semantics.
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` (floored at 1) jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Enqueues without blocking; returns the post-push depth.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job. Returns `None` only when the queue is closed
    /// **and** every queued job has been handed out — workers drain the
    /// backlog before exiting.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, and consumers wake to drain
    /// whatever is already queued.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_reports_full_then_accepts_after_pop() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_backlog_then_returns_none() {
        let q = JobQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = JobQueue::<u8>::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(9), Ok(1));
        assert_eq!(q.try_push(9), Err(PushError::Full));
    }
}
