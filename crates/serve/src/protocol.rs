//! The `exi-serve` wire protocol: length-prefixed newline-JSON frames.
//!
//! # Framing
//!
//! Every message — in both directions — is one frame:
//!
//! ```text
//! <decimal byte length of the JSON document>\n
//! <that many bytes of single-line JSON>\n
//! ```
//!
//! The explicit length makes oversized-payload rejection possible *before*
//! buffering the document, and the trailing newline keeps the stream
//! self-synchronizing enough to detect a desynced peer immediately. A frame
//! whose declared length exceeds the receiver's limit, whose length line is
//! not a decimal number, or whose payload is not valid JSON is a protocol
//! error; the server replies with a `protocol_error` frame and closes the
//! connection (there is no way to resynchronize a corrupt length prefix).
//!
//! # Bit-identity
//!
//! Waveform samples travel as **preformatted strings** (17 significant
//! digits, the repo-wide `{:.17e}` contract) inside `chunk.rows`, never as
//! JSON numbers. The client writes them into its CSV verbatim, so the bytes
//! a client materializes are identical to what `exi-cli run` writes locally
//! — no float parser sits between the solver and the file.

use std::io::{BufRead, Read, Write};

use exi_sim::Method;

use crate::json::{n, obj, s, Json};
use crate::stats::ServerStats;

/// Default cap on a single frame's JSON payload (1 MiB) — large enough for
/// any realistic deck or chunk, small enough that a hostile length prefix
/// cannot balloon server memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The frame violates the protocol (bad length line, bad JSON, missing
    /// terminator); the connection cannot be trusted afterwards.
    Malformed(String),
    /// The declared payload length exceeds the receiver's limit.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// The receiver's limit.
        limit: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::Oversized { declared, limit } => {
                write!(f, "oversized frame: {declared} bytes (limit {limit})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (`<len>\n<json>\n`) and flushes.
///
/// # Errors
///
/// Propagates sink errors.
pub fn write_frame(w: &mut dyn Write, json: &str) -> std::io::Result<()> {
    // One vectored-ish write: assembling the whole frame first keeps a
    // concurrent writer (several workers share one socket mutex) from ever
    // interleaving partial frames even if the mutex discipline regressed.
    let mut frame = String::with_capacity(json.len() + 16);
    frame.push_str(&json.len().to_string());
    frame.push('\n');
    frame.push_str(json);
    frame.push('\n');
    w.write_all(frame.as_bytes())?;
    w.flush()
}

/// Reads one frame's JSON payload. Returns `Ok(None)` on clean end-of-stream
/// (EOF before any length byte).
///
/// # Errors
///
/// [`FrameError::Oversized`] when the declared length exceeds `max_bytes`
/// (nothing beyond the length line has been consumed);
/// [`FrameError::Malformed`] for a non-decimal length line or a missing
/// trailing newline; [`FrameError::Io`] for transport failures.
pub fn read_frame(r: &mut dyn BufRead, max_bytes: usize) -> Result<Option<String>, FrameError> {
    let mut len_line = String::new();
    // Bound the length line itself: 20 digits covers u64, anything longer
    // is garbage that must not be buffered without limit.
    let read = (&mut *r)
        .take(32)
        .read_line(&mut len_line)
        .map_err(FrameError::Io)?;
    if read == 0 {
        return Ok(None);
    }
    let trimmed = len_line.trim_end_matches(['\r', '\n']);
    if !len_line.ends_with('\n') {
        return Err(FrameError::Malformed(format!(
            "length line '{trimmed}' not newline-terminated"
        )));
    }
    let declared: usize = trimmed
        .parse()
        .map_err(|_| FrameError::Malformed(format!("bad length line '{trimmed}'")))?;
    if declared > max_bytes {
        return Err(FrameError::Oversized {
            declared,
            limit: max_bytes,
        });
    }
    let mut payload = vec![0u8; declared + 1];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    if payload.pop() != Some(b'\n') {
        return Err(FrameError::Malformed(
            "frame payload not newline-terminated".to_string(),
        ));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::Malformed("frame payload is not utf-8".to_string()))
}

/// The canonical wire name of an integration method.
pub fn method_name(method: Method) -> &'static str {
    match method {
        Method::ExponentialRosenbrock => "er",
        Method::ExponentialRosenbrockCorrected => "erc",
        Method::BackwardEuler => "be",
        Method::Trapezoidal => "tr",
    }
}

/// Parses a wire method name (the same aliases as `exi-cli --method`).
pub fn parse_method(name: &str) -> Option<Method> {
    match name.to_ascii_lowercase().as_str() {
        "er" => Some(Method::ExponentialRosenbrock),
        "erc" | "er-c" => Some(Method::ExponentialRosenbrockCorrected),
        "be" | "benr" => Some(Method::BackwardEuler),
        "tr" | "trnr" | "trap" => Some(Method::Trapezoidal),
        _ => None,
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a deck for simulation.
    Run(RunRequest),
    /// Cancel the job with the given id (bit-exact prefix partial).
    Cancel {
        /// The job to cancel.
        id: String,
    },
    /// Ask for a [`ServerStats`] snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop accepting work, drain in-flight jobs, exit.
    Shutdown,
}

/// The payload of a [`Request::Run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Client-chosen job id; replies and cancellation refer to it. Must be
    /// unique among the server's active jobs.
    pub id: String,
    /// The SPICE deck text (the daemon runs its first `.tran` card).
    pub deck: String,
    /// Integration method.
    pub method: Method,
    /// Probe overrides; empty means the deck's `.print` cards, else every
    /// node — the same cascade as `exi-cli run`.
    pub probes: Vec<String>,
    /// Keep every `decimate`-th accepted row (1 = every row; the
    /// memory-capped streaming knob).
    pub decimate: usize,
    /// Rows per `chunk` frame; `None` uses the server default.
    pub chunk_rows: Option<usize>,
    /// Wall-clock budget in milliseconds, measured from the moment a worker
    /// picks the job up; `None` runs uncapped.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// Serializes the request as single-line JSON.
    pub fn to_json(&self) -> String {
        match self {
            Request::Run(run) => {
                let mut pairs = vec![
                    ("type", s("run")),
                    ("id", s(&run.id)),
                    ("deck", s(&run.deck)),
                    ("method", s(method_name(run.method))),
                    ("decimate", n(run.decimate)),
                ];
                if !run.probes.is_empty() {
                    pairs.push(("probes", Json::Arr(run.probes.iter().map(s).collect())));
                }
                if let Some(rows) = run.chunk_rows {
                    pairs.push(("chunk_rows", n(rows)));
                }
                if let Some(ms) = run.deadline_ms {
                    pairs.push(("deadline_ms", Json::Num(ms as f64)));
                }
                obj(pairs).dump()
            }
            Request::Cancel { id } => obj(vec![("type", s("cancel")), ("id", s(id))]).dump(),
            Request::Stats => obj(vec![("type", s("stats"))]).dump(),
            Request::Ping => obj(vec![("type", s("ping"))]).dump(),
            Request::Shutdown => obj(vec![("type", s("shutdown"))]).dump(),
        }
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A description of the first problem (unknown type, missing field,
    /// wrong field type).
    pub fn from_json(text: &str) -> Result<Request, String> {
        let v = Json::parse(text)?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing 'type' field")?;
        let id = |v: &Json| -> Result<String, String> {
            Ok(v.get("id")
                .and_then(Json::as_str)
                .ok_or("missing 'id' field")?
                .to_string())
        };
        match kind {
            "run" => {
                let deck = v
                    .get("deck")
                    .and_then(Json::as_str)
                    .ok_or("run: missing 'deck' field")?
                    .to_string();
                let method = match v.get("method").and_then(Json::as_str) {
                    None => Method::ExponentialRosenbrock,
                    Some(name) => {
                        parse_method(name).ok_or_else(|| format!("unknown method '{name}'"))?
                    }
                };
                let probes = match v.get("probes") {
                    None => Vec::new(),
                    Some(arr) => arr
                        .as_arr()
                        .ok_or("run: 'probes' must be an array")?
                        .iter()
                        .map(|p| {
                            p.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "run: probes must be strings".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                let decimate = match v.get("decimate") {
                    None => 1,
                    Some(d) => d
                        .as_u64()
                        .filter(|&d| d >= 1)
                        .ok_or("run: 'decimate' must be a positive integer")?
                        as usize,
                };
                let chunk_rows = match v.get("chunk_rows") {
                    None => None,
                    Some(c) => Some(
                        c.as_u64()
                            .filter(|&c| c >= 1)
                            .ok_or("run: 'chunk_rows' must be a positive integer")?
                            as usize,
                    ),
                };
                let deadline_ms = match v.get("deadline_ms") {
                    None => None,
                    Some(d) => Some(d.as_u64().ok_or("run: 'deadline_ms' must be an integer")?),
                };
                Ok(Request::Run(RunRequest {
                    id: id(&v)?,
                    deck,
                    method,
                    probes,
                    decimate,
                    chunk_rows,
                    deadline_ms,
                }))
            }
            "cancel" => Ok(Request::Cancel { id: id(&v)? }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type '{other}'")),
        }
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The run was admitted to the queue.
    Accepted {
        /// The job id.
        id: String,
        /// Queue depth after admission (including this job).
        queue_depth: usize,
    },
    /// Backpressure: the queue is full, try again later.
    Busy {
        /// The rejected job id.
        id: String,
        /// The queue's capacity.
        queue_capacity: usize,
    },
    /// Admission control refused the job before it touched the queue.
    Rejected {
        /// The refused job id.
        id: String,
        /// Machine-readable refusal class: `"budget"` (per-job footprint),
        /// `"inflight"` (server-wide in-flight budget), `"overload"`
        /// (shedding ladder), or `"degraded"` (no workers left).
        reason: String,
        /// Human-readable detail (which limit, measured vs allowed).
        message: String,
    },
    /// A slice of waveform rows, in simulation order.
    Chunk {
        /// The job id.
        id: String,
        /// Chunk sequence number, from 0.
        seq: usize,
        /// Column labels (`time` first), present on the first chunk only.
        columns: Option<Vec<String>>,
        /// Rows of preformatted 17-significant-digit values — written to
        /// CSV verbatim, never reparsed.
        rows: Vec<Vec<String>>,
    },
    /// The job finished with a complete waveform.
    Done {
        /// The job id.
        id: String,
        /// Total data rows streamed (after decimation).
        rows: usize,
        /// Accepted solver steps.
        accepted_steps: usize,
        /// Symbolic LU analyses this job performed (0 on a warm cache).
        symbolic_analyses: usize,
        /// Cross-session symbolic-cache hits this job recorded.
        shared_symbolic_hits: usize,
        /// Stamping-plan compilations this job performed (0 on a warm cache).
        plan_compilations: usize,
        /// Shared plan-cache hits this job recorded.
        shared_plan_hits: usize,
    },
    /// The job stopped early; everything streamed so far is a bit-exact
    /// prefix of the uncancelled run.
    Cancelled {
        /// The job id.
        id: String,
        /// `"token"` (cancelled over the wire) or `"deadline"`.
        reason: String,
        /// Simulation time at the stop boundary, preformatted.
        at_time: String,
        /// Total data rows streamed before the stop.
        rows: usize,
    },
    /// The job failed; `class` matches the `exi-cli` error taxonomy
    /// (`parse`, `convergence`, `io`, `usage`, `internal`).
    JobError {
        /// The job id (empty when the failure precedes admission).
        id: String,
        /// Machine-readable failure class.
        class: String,
        /// Human-readable message.
        message: String,
    },
    /// Acknowledges a cancel request.
    CancelAck {
        /// The id the cancel referred to.
        id: String,
        /// Whether the id named an active (queued or running) job.
        known: bool,
    },
    /// A [`ServerStats`] snapshot.
    Stats(ServerStats),
    /// Liveness reply.
    Pong,
    /// The server is draining and will exit; no further work is accepted.
    ShuttingDown,
    /// The peer broke the framing or JSON rules; the connection closes
    /// after this frame.
    ProtocolError {
        /// What was wrong.
        message: String,
    },
}

impl Response {
    /// Serializes the response as single-line JSON.
    pub fn to_json(&self) -> String {
        match self {
            Response::Accepted { id, queue_depth } => obj(vec![
                ("type", s("accepted")),
                ("id", s(id)),
                ("queue_depth", n(*queue_depth)),
            ])
            .dump(),
            Response::Busy { id, queue_capacity } => obj(vec![
                ("type", s("busy")),
                ("id", s(id)),
                ("queue_capacity", n(*queue_capacity)),
            ])
            .dump(),
            Response::Rejected {
                id,
                reason,
                message,
            } => obj(vec![
                ("type", s("rejected")),
                ("id", s(id)),
                ("reason", s(reason)),
                ("message", s(message)),
            ])
            .dump(),
            Response::Chunk {
                id,
                seq,
                columns,
                rows,
            } => {
                let mut pairs = vec![("type", s("chunk")), ("id", s(id)), ("seq", n(*seq))];
                if let Some(columns) = columns {
                    pairs.push(("columns", Json::Arr(columns.iter().map(s).collect())));
                }
                pairs.push((
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|row| Json::Arr(row.iter().map(s).collect()))
                            .collect(),
                    ),
                ));
                obj(pairs).dump()
            }
            Response::Done {
                id,
                rows,
                accepted_steps,
                symbolic_analyses,
                shared_symbolic_hits,
                plan_compilations,
                shared_plan_hits,
            } => obj(vec![
                ("type", s("done")),
                ("id", s(id)),
                ("rows", n(*rows)),
                ("accepted_steps", n(*accepted_steps)),
                ("symbolic_analyses", n(*symbolic_analyses)),
                ("shared_symbolic_hits", n(*shared_symbolic_hits)),
                ("plan_compilations", n(*plan_compilations)),
                ("shared_plan_hits", n(*shared_plan_hits)),
            ])
            .dump(),
            Response::Cancelled {
                id,
                reason,
                at_time,
                rows,
            } => obj(vec![
                ("type", s("cancelled")),
                ("id", s(id)),
                ("reason", s(reason)),
                ("at_time", s(at_time)),
                ("rows", n(*rows)),
            ])
            .dump(),
            Response::JobError { id, class, message } => obj(vec![
                ("type", s("error")),
                ("id", s(id)),
                ("class", s(class)),
                ("message", s(message)),
            ])
            .dump(),
            Response::CancelAck { id, known } => obj(vec![
                ("type", s("cancel_ack")),
                ("id", s(id)),
                ("known", Json::Bool(*known)),
            ])
            .dump(),
            Response::Stats(stats) => {
                obj(vec![("type", s("stats")), ("stats", stats.to_json())]).dump()
            }
            Response::Pong => obj(vec![("type", s("pong"))]).dump(),
            Response::ShuttingDown => obj(vec![("type", s("shutting_down"))]).dump(),
            Response::ProtocolError { message } => {
                obj(vec![("type", s("protocol_error")), ("message", s(message))]).dump()
            }
        }
    }

    /// Parses a response frame (the client side).
    ///
    /// # Errors
    ///
    /// A description of the first problem found.
    pub fn from_json(text: &str) -> Result<Response, String> {
        let v = Json::parse(text)?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing 'type' field")?;
        let id = |v: &Json| -> Result<String, String> {
            Ok(v.get("id")
                .and_then(Json::as_str)
                .ok_or("missing 'id' field")?
                .to_string())
        };
        let count = |v: &Json, key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .map(|u| u as usize)
                .ok_or_else(|| format!("missing counter '{key}'"))
        };
        match kind {
            "accepted" => Ok(Response::Accepted {
                id: id(&v)?,
                queue_depth: count(&v, "queue_depth")?,
            }),
            "busy" => Ok(Response::Busy {
                id: id(&v)?,
                queue_capacity: count(&v, "queue_capacity")?,
            }),
            "rejected" => Ok(Response::Rejected {
                id: id(&v)?,
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or("rejected: missing 'reason'")?
                    .to_string(),
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("rejected: missing 'message'")?
                    .to_string(),
            }),
            "chunk" => {
                let columns = match v.get("columns") {
                    None => None,
                    Some(arr) => Some(
                        arr.as_arr()
                            .ok_or("chunk: 'columns' must be an array")?
                            .iter()
                            .map(|c| {
                                c.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| "chunk: columns must be strings".to_string())
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                };
                let rows = v
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or("chunk: missing 'rows' array")?
                    .iter()
                    .map(|row| {
                        row.as_arr()
                            .ok_or_else(|| "chunk: rows must be arrays".to_string())?
                            .iter()
                            .map(|cell| {
                                cell.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| "chunk: cells must be strings".to_string())
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Chunk {
                    id: id(&v)?,
                    seq: count(&v, "seq")?,
                    columns,
                    rows,
                })
            }
            "done" => Ok(Response::Done {
                id: id(&v)?,
                rows: count(&v, "rows")?,
                accepted_steps: count(&v, "accepted_steps")?,
                symbolic_analyses: count(&v, "symbolic_analyses")?,
                shared_symbolic_hits: count(&v, "shared_symbolic_hits")?,
                plan_compilations: count(&v, "plan_compilations")?,
                shared_plan_hits: count(&v, "shared_plan_hits")?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                id: id(&v)?,
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or("cancelled: missing 'reason'")?
                    .to_string(),
                at_time: v
                    .get("at_time")
                    .and_then(Json::as_str)
                    .ok_or("cancelled: missing 'at_time'")?
                    .to_string(),
                rows: count(&v, "rows")?,
            }),
            "error" => Ok(Response::JobError {
                id: id(&v)?,
                class: v
                    .get("class")
                    .and_then(Json::as_str)
                    .ok_or("error: missing 'class'")?
                    .to_string(),
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("error: missing 'message'")?
                    .to_string(),
            }),
            "cancel_ack" => Ok(Response::CancelAck {
                id: id(&v)?,
                known: v
                    .get("known")
                    .and_then(Json::as_bool)
                    .ok_or("cancel_ack: missing 'known'")?,
            }),
            "stats" => {
                let stats = v.get("stats").ok_or("stats: missing payload")?;
                Ok(Response::Stats(
                    ServerStats::from_json(stats).ok_or("stats: bad payload")?,
                ))
            }
            "pong" => Ok(Response::Pong),
            "shutting_down" => Ok(Response::ShuttingDown),
            "protocol_error" => Ok(Response::ProtocolError {
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("protocol_error: missing 'message'")?
                    .to_string(),
            }),
            other => Err(format!("unknown response type '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, r#"{"type":"ping"}"#).unwrap();
        write_frame(&mut wire, r#"{"type":"stats"}"#).unwrap();
        let mut reader = std::io::BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .as_deref(),
            Some(r#"{"type":"ping"}"#)
        );
        assert_eq!(
            read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .as_deref(),
            Some(r#"{"type":"stats"}"#)
        );
        assert!(read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_and_malformed_frames_are_rejected() {
        let mut reader = std::io::BufReader::new(&b"999999999\n"[..]);
        assert!(matches!(
            read_frame(&mut reader, 1024),
            Err(FrameError::Oversized {
                declared: 999_999_999,
                limit: 1024
            })
        ));
        let mut reader = std::io::BufReader::new(&b"not-a-number\n{}\n"[..]);
        assert!(matches!(
            read_frame(&mut reader, 1024),
            Err(FrameError::Malformed(_))
        ));
        // Payload shorter than declared: the missing terminator is detected.
        let mut reader = std::io::BufReader::new(&b"10\n{}\n"[..]);
        assert!(matches!(
            read_frame(&mut reader, 1024),
            Err(FrameError::Io(_) | FrameError::Malformed(_))
        ));
        // A length line that never terminates is bounded, not buffered.
        let mut reader = std::io::BufReader::new(&b"11111111111111111111111111111111111"[..]);
        assert!(matches!(
            read_frame(&mut reader, 1024),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let run = Request::Run(RunRequest {
            id: "job-1".to_string(),
            deck: "V1 a 0 DC 1\nR1 a 0 1k\n.tran 1p 10p\n".to_string(),
            method: Method::BackwardEuler,
            probes: vec!["a".to_string()],
            decimate: 4,
            chunk_rows: Some(32),
            deadline_ms: Some(1500),
        });
        for req in [
            run,
            Request::Cancel {
                id: "job-1".to_string(),
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ] {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(back, req);
        }
        // Defaults: method er, decimate 1, no probes/chunk/deadline.
        let minimal =
            Request::from_json(r#"{"type":"run","id":"x","deck":".tran 1p 2p\n"}"#).unwrap();
        match minimal {
            Request::Run(run) => {
                assert_eq!(run.method, Method::ExponentialRosenbrock);
                assert_eq!(run.decimate, 1);
                assert!(run.probes.is_empty());
                assert_eq!(run.chunk_rows, None);
                assert_eq!(run.deadline_ms, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Request::from_json(r#"{"type":"warp"}"#).is_err());
        assert!(Request::from_json(r#"{"type":"run","id":"x"}"#).is_err());
        assert!(Request::from_json(r#"{"type":"run","id":"x","deck":"d","decimate":0}"#).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let samples = vec![
            Response::Accepted {
                id: "j".to_string(),
                queue_depth: 3,
            },
            Response::Busy {
                id: "j".to_string(),
                queue_capacity: 16,
            },
            Response::Rejected {
                id: "j".to_string(),
                reason: "budget".to_string(),
                message: "declared steps 60000 exceed budget 1000".to_string(),
            },
            Response::Chunk {
                id: "j".to_string(),
                seq: 0,
                columns: Some(vec!["time".to_string(), "out".to_string()]),
                rows: vec![vec![
                    "0.00000000000000000e0".to_string(),
                    "1.5e0".to_string(),
                ]],
            },
            Response::Chunk {
                id: "j".to_string(),
                seq: 1,
                columns: None,
                rows: vec![],
            },
            Response::Done {
                id: "j".to_string(),
                rows: 42,
                accepted_steps: 41,
                symbolic_analyses: 1,
                shared_symbolic_hits: 0,
                plan_compilations: 1,
                shared_plan_hits: 0,
            },
            Response::Cancelled {
                id: "j".to_string(),
                reason: "token".to_string(),
                at_time: "1.00000000000000000e-10".to_string(),
                rows: 7,
            },
            Response::JobError {
                id: "j".to_string(),
                class: "parse".to_string(),
                message: "line 3: bad card".to_string(),
            },
            Response::CancelAck {
                id: "j".to_string(),
                known: true,
            },
            Response::Stats(ServerStats::default()),
            Response::Pong,
            Response::ShuttingDown,
            Response::ProtocolError {
                message: "bad length line".to_string(),
            },
        ];
        for resp in samples {
            let back = Response::from_json(&resp.to_json()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn method_names_round_trip() {
        for method in [
            Method::ExponentialRosenbrock,
            Method::ExponentialRosenbrockCorrected,
            Method::BackwardEuler,
            Method::Trapezoidal,
        ] {
            assert_eq!(parse_method(method_name(method)), Some(method));
        }
        assert_eq!(parse_method("rk4"), None);
    }
}
