//! Server-wide observability: the [`ServerStats`] snapshot a `stats`
//! request returns.

use exi_sparse::CacheStats;

use crate::json::{n, obj, Json};

/// A consistent snapshot of the daemon's lifetime counters, queue state and
/// warm-cache residency, taken under the server's stats lock.
///
/// The solver counters (`accepted_steps` through `shared_plan_hits`) are the
/// server-wide merge of every finished job's
/// [`RunStats`](exi_sim::RunStats) — the fleet-amortization contract shows
/// up here as `symbolic_analyses == distinct patterns` and
/// `plan_compilations == distinct structures`, however many jobs ran.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Jobs admitted to the queue.
    pub jobs_accepted: u64,
    /// Jobs that finished with a complete waveform.
    pub jobs_completed: u64,
    /// Jobs that stopped with a simulation/parse/I/O error.
    pub jobs_failed: u64,
    /// Jobs cancelled over the wire or by their deadline.
    pub jobs_cancelled: u64,
    /// `run` requests bounced with `busy` because the queue was full.
    pub jobs_rejected: u64,
    /// `run` requests refused at admission by the per-job or in-flight
    /// footprint budget (`rejected{reason: "budget" | "inflight"}`).
    pub jobs_rejected_budget: u64,
    /// `run` requests shed by the overload ladder or refused while degraded
    /// (`rejected{reason: "overload" | "degraded"}`).
    pub jobs_shed_overload: u64,
    /// Running jobs cancelled by the overload ladder (stages 2–3).
    pub jobs_cancelled_overload: u64,
    /// Worker threads respawned by the supervisor after a panic.
    pub workers_respawned: u64,
    /// Connections closed by the read/idle timeout reaper.
    pub connections_reaped: u64,
    /// Frame writes abandoned because the client stalled past the
    /// write-stall deadline.
    pub write_stalls: u64,
    /// Overload-ladder stage changes since boot (escalations and
    /// de-escalations both count).
    pub overload_transitions: u64,
    /// Current overload-ladder stage: 0 normal, 1 shed, 2 cancel, 3 drain.
    pub overload_stage: usize,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// The queue's capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Merged accepted time steps across all finished jobs.
    pub accepted_steps: usize,
    /// Merged symbolic LU analyses (fleet-wide: one per distinct pattern).
    pub symbolic_analyses: usize,
    /// Merged cross-session symbolic-cache hits.
    pub shared_symbolic_hits: usize,
    /// Merged stamping-plan compilations (one per distinct structure).
    pub plan_compilations: usize,
    /// Merged shared plan-cache hits.
    pub shared_plan_hits: usize,
    /// Residency counters of the warm symbolic cache.
    pub symbolic_cache: CacheStats,
    /// Residency counters of the warm plan cache.
    pub plan_cache: CacheStats,
}

/// Serializes one [`CacheStats`] as a JSON object (capacity `null` when
/// unbounded).
fn cache_json(c: &CacheStats) -> Json {
    obj(vec![
        ("entries", n(c.entries)),
        (
            "capacity",
            c.capacity.map_or(Json::Null, |v| Json::Num(v as f64)),
        ),
        ("hits", Json::Num(c.hits as f64)),
        ("misses", Json::Num(c.misses as f64)),
        ("evictions", Json::Num(c.evictions as f64)),
    ])
}

/// Reads one [`CacheStats`] back from its JSON object form.
fn cache_from_json(v: &Json) -> Option<CacheStats> {
    Some(CacheStats {
        entries: v.get("entries")?.as_u64()? as usize,
        capacity: match v.get("capacity")? {
            Json::Null => None,
            other => Some(other.as_u64()? as usize),
        },
        hits: v.get("hits")?.as_u64()?,
        misses: v.get("misses")?.as_u64()?,
        evictions: v.get("evictions")?.as_u64()?,
    })
}

impl ServerStats {
    /// Serializes the snapshot as the payload of a `stats` response.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("jobs_accepted", Json::Num(self.jobs_accepted as f64)),
            ("jobs_completed", Json::Num(self.jobs_completed as f64)),
            ("jobs_failed", Json::Num(self.jobs_failed as f64)),
            ("jobs_cancelled", Json::Num(self.jobs_cancelled as f64)),
            ("jobs_rejected", Json::Num(self.jobs_rejected as f64)),
            (
                "jobs_rejected_budget",
                Json::Num(self.jobs_rejected_budget as f64),
            ),
            (
                "jobs_shed_overload",
                Json::Num(self.jobs_shed_overload as f64),
            ),
            (
                "jobs_cancelled_overload",
                Json::Num(self.jobs_cancelled_overload as f64),
            ),
            (
                "workers_respawned",
                Json::Num(self.workers_respawned as f64),
            ),
            (
                "connections_reaped",
                Json::Num(self.connections_reaped as f64),
            ),
            ("write_stalls", Json::Num(self.write_stalls as f64)),
            (
                "overload_transitions",
                Json::Num(self.overload_transitions as f64),
            ),
            ("overload_stage", n(self.overload_stage)),
            ("queue_depth", n(self.queue_depth)),
            ("queue_capacity", n(self.queue_capacity)),
            ("workers", n(self.workers)),
            ("accepted_steps", n(self.accepted_steps)),
            ("symbolic_analyses", n(self.symbolic_analyses)),
            ("shared_symbolic_hits", n(self.shared_symbolic_hits)),
            ("plan_compilations", n(self.plan_compilations)),
            ("shared_plan_hits", n(self.shared_plan_hits)),
            ("symbolic_cache", cache_json(&self.symbolic_cache)),
            ("plan_cache", cache_json(&self.plan_cache)),
        ])
    }

    /// Reads a snapshot back from its JSON form (the client side).
    pub fn from_json(v: &Json) -> Option<ServerStats> {
        Some(ServerStats {
            jobs_accepted: v.get("jobs_accepted")?.as_u64()?,
            jobs_completed: v.get("jobs_completed")?.as_u64()?,
            jobs_failed: v.get("jobs_failed")?.as_u64()?,
            jobs_cancelled: v.get("jobs_cancelled")?.as_u64()?,
            jobs_rejected: v.get("jobs_rejected")?.as_u64()?,
            jobs_rejected_budget: v.get("jobs_rejected_budget")?.as_u64()?,
            jobs_shed_overload: v.get("jobs_shed_overload")?.as_u64()?,
            jobs_cancelled_overload: v.get("jobs_cancelled_overload")?.as_u64()?,
            workers_respawned: v.get("workers_respawned")?.as_u64()?,
            connections_reaped: v.get("connections_reaped")?.as_u64()?,
            write_stalls: v.get("write_stalls")?.as_u64()?,
            overload_transitions: v.get("overload_transitions")?.as_u64()?,
            overload_stage: v.get("overload_stage")?.as_u64()? as usize,
            queue_depth: v.get("queue_depth")?.as_u64()? as usize,
            queue_capacity: v.get("queue_capacity")?.as_u64()? as usize,
            workers: v.get("workers")?.as_u64()? as usize,
            accepted_steps: v.get("accepted_steps")?.as_u64()? as usize,
            symbolic_analyses: v.get("symbolic_analyses")?.as_u64()? as usize,
            shared_symbolic_hits: v.get("shared_symbolic_hits")?.as_u64()? as usize,
            plan_compilations: v.get("plan_compilations")?.as_u64()? as usize,
            shared_plan_hits: v.get("shared_plan_hits")?.as_u64()? as usize,
            symbolic_cache: cache_from_json(v.get("symbolic_cache")?)?,
            plan_cache: cache_from_json(v.get("plan_cache")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        let stats = ServerStats {
            jobs_accepted: 7,
            jobs_completed: 5,
            jobs_failed: 1,
            jobs_cancelled: 1,
            jobs_rejected: 2,
            jobs_rejected_budget: 3,
            jobs_shed_overload: 4,
            jobs_cancelled_overload: 1,
            workers_respawned: 2,
            connections_reaped: 5,
            write_stalls: 1,
            overload_transitions: 6,
            overload_stage: 1,
            queue_depth: 3,
            queue_capacity: 16,
            workers: 4,
            accepted_steps: 1234,
            symbolic_analyses: 1,
            shared_symbolic_hits: 6,
            plan_compilations: 1,
            shared_plan_hits: 6,
            symbolic_cache: CacheStats {
                entries: 1,
                capacity: Some(64),
                hits: 6,
                misses: 1,
                evictions: 0,
            },
            plan_cache: CacheStats {
                entries: 1,
                capacity: None,
                hits: 6,
                misses: 1,
                evictions: 0,
            },
        };
        let json = stats.to_json();
        let back = ServerStats::from_json(&Json::parse(&json.dump()).unwrap()).unwrap();
        assert_eq!(back, stats);
    }
}
