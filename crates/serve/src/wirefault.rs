//! Deterministic wire-level fault injection (feature
//! `wire-fault-injection`).
//!
//! The transport extension of [`exi_sim::fault`]: where that module corrupts
//! solver state at a chosen device evaluation, this one corrupts the *wire*
//! at a chosen frame or write — a frame truncated mid-payload, a socket
//! dropped mid-stream, a reader that stalls past the reap deadline, a length
//! line that arrives as garbage. The chaos acceptance test arms one fault
//! per hostile connection and proves that every *unfaulted* job still
//! streams a bit-identical waveform and that the server drains cleanly.
//!
//! # Model
//!
//! Faults are armed per **accept index** — the 1-based order in which the
//! server accepts connections ([`arm`]). The kernel accept queue is FIFO, so
//! serial connects from a test give deterministic indices. When the handler
//! for connection `n` starts it calls [`install`]`(n)` and splits the spec:
//! read-side faults act inside the server's frame reader, write-side faults
//! act inside the shared connection writer. All trigger counters are
//! 1-based, mirroring [`exi_sim::fault::FaultSpec`].
//!
//! Never enable this feature in production builds.

use std::collections::HashMap;
use std::sync::Mutex;

/// What to break on one connection's wire, and when (1-based counters).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireFaultSpec {
    /// At outgoing frame write number `.0`, send only the first `.1` bytes
    /// of the frame, then hard-close the socket — the client sees a
    /// truncated frame followed by EOF.
    pub truncate_write: Option<(usize, usize)>,
    /// Replace outgoing frame write number `.0` with a hard close — the
    /// mid-stream disconnect a vanished client produces.
    pub disconnect_at_write: Option<usize>,
    /// Before incoming frame number `.0` is awaited, stall the connection's
    /// reader for `.1` milliseconds — past the idle deadline this draws the
    /// reaper, under it it is just latency.
    pub stall_read_ms: Option<(usize, u64)>,
    /// Incoming frame number `.0` arrives with a corrupted length line —
    /// the handler replies `protocol_error` and closes, exactly as for a
    /// real desynced peer.
    pub corrupt_len_line: Option<usize>,
}

impl WireFaultSpec {
    /// `true` when the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == WireFaultSpec::default()
    }
}

/// Faults armed per accept index, waiting for their connection.
static ARMED: Mutex<Option<HashMap<usize, WireFaultSpec>>> = Mutex::new(None);

fn armed_lock() -> std::sync::MutexGuard<'static, Option<HashMap<usize, WireFaultSpec>>> {
    ARMED
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `spec` for the `connection`-th accepted connection (1-based).
pub fn arm(connection: usize, spec: WireFaultSpec) {
    armed_lock()
        .get_or_insert_with(HashMap::new)
        .insert(connection, spec);
}

/// Disarms one accept index, leaving the others armed.
pub fn disarm(connection: usize) {
    if let Some(map) = armed_lock().as_mut() {
        map.remove(&connection);
    }
}

/// Disarms every accept index.
pub fn clear_all() {
    *armed_lock() = None;
}

/// Fetches the fault armed for accept index `connection`, if any. The
/// server's connection handler calls this once at accept time; the spec
/// stays armed (a reconnect at the same index would see it again).
pub fn install(connection: usize) -> Option<WireFaultSpec> {
    armed_lock()
        .as_ref()
        .and_then(|map| map.get(&connection).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_install_disarm_round_trip() {
        let spec = WireFaultSpec {
            truncate_write: Some((2, 7)),
            ..WireFaultSpec::default()
        };
        assert!(!spec.is_empty());
        // Use high indices so concurrent tests in this binary cannot collide.
        arm(90_001, spec.clone());
        assert_eq!(install(90_001), Some(spec));
        assert_eq!(install(90_002), None);
        disarm(90_001);
        assert_eq!(install(90_001), None);
    }
}
