//! # exi-serve
//!
//! A **resident simulation service** for the exi-sim stack: a long-running
//! daemon that accepts SPICE decks over TCP, runs them on a worker pool
//! whose sessions share the fleet-wide warm caches, and streams waveforms
//! back incrementally — the multi-tenant extension of the paper's
//! amortization argument. Where [`exi_sim::BatchRunner`] amortizes one
//! symbolic LU analysis across a *batch*, the daemon amortizes it across
//! *clients and time*: every worker session is built with
//! [`exi_sim::Simulator::with_shared_symbolic`] and
//! [`exi_sim::Simulator::with_plan_cache`] over two capacity-bounded
//! LRU caches, so requests sharing a circuit fingerprint perform exactly one
//! symbolic analysis and one plan compilation server-wide, however many
//! connections submit them and however far apart in time.
//!
//! Everything is `std`-only: the wire format is hand-rolled length-prefixed
//! newline-JSON ([`protocol`]), the transport is [`std::net::TcpListener`],
//! and concurrency is `Mutex`/`Condvar` ([`queue`]) plus scoped threads.
//!
//! The moving parts:
//!
//! * [`protocol`] — frames, [`Request`]/[`Response`], and the bit-identity
//!   contract (waveform values travel as preformatted 17-digit strings).
//! * [`queue`] — the bounded FIFO with `busy` backpressure and
//!   close-and-drain shutdown.
//! * [`server`] — [`Server`]: accept loop, per-connection handlers, worker
//!   pool, the socket-backed streaming `Observer`, per-job deadlines and
//!   wire cancellation on the `CancelToken` contract (cancelled jobs stream
//!   a bit-exact prefix of the uncancelled run).
//! * [`client`] — [`Client`]: the blocking client library behind
//!   `exi-cli client`.
//! * [`stats`] — [`ServerStats`]: the consistent observability snapshot a
//!   `stats` request returns (job counters, queue state, cache residency).
//! * `wirefault` *(feature `wire-fault-injection`)* — deterministic
//!   wire-level fault injection for chaos tests: truncated frames,
//!   mid-stream disconnects, stalled readers, corrupted length lines, armed
//!   per accepted connection.
//!
//! # Hardening
//!
//! The daemon assumes hostile tenants. Admission control estimates every
//! deck's footprint against a [`JobBudget`] (and a server-wide in-flight
//! unknown budget) before queueing; jobs that declare no deadline inherit
//! the server default. A supervisor respawns workers that panic (bounded
//! per window, then degraded mode) after attributing the failure to the
//! offending job. Stalled or idle connections are reaped without occupying
//! a worker, and a client that stops reading trips the write-stall deadline.
//! Under sustained queue pressure an [`OverloadConfig`]-driven ladder sheds
//! load in documented stages. `docs/SERVICE.md` covers limits, the ladder
//! and the failure modes; `docs/ROBUSTNESS.md` covers the fault taxonomy.
//!
//! See `docs/SERVICE.md` for the protocol specification and operational
//! notes.
//!
//! # Example
//!
//! ```no_run
//! use exi_serve::{Client, RunRequest, Server, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind(ServeConfig::default())?;
//! let addr = server.local_addr()?;
//! let daemon = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let mut csv = Vec::new();
//! let end = client.run_streaming(
//!     RunRequest {
//!         id: "job-1".to_string(),
//!         deck: "V1 in 0 PULSE(0 1 0 10p 10p 200p)\n\
//!                R1 in out 1k\n\
//!                C1 out 0 1f\n\
//!                .tran 1p 500p\n\
//!                .print v(out)\n"
//!             .to_string(),
//!         method: exi_sim::Method::ExponentialRosenbrock,
//!         probes: Vec::new(),
//!         decimate: 1,
//!         chunk_rows: None,
//!         deadline_ms: None,
//!     },
//!     &mut csv,
//!     ',',
//! )?;
//! println!("{end:?}: {} bytes of CSV", csv.len());
//! client.shutdown()?;
//! let final_stats = daemon.join().unwrap();
//! assert_eq!(final_stats.jobs_completed, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;
#[cfg(feature = "wire-fault-injection")]
pub mod wirefault;

pub use client::{Client, ClientError, RunEnd};
pub use protocol::{
    method_name, parse_method, read_frame, write_frame, FrameError, Request, Response, RunRequest,
};
pub use queue::{JobQueue, PushError};
pub use server::{JobBudget, OverloadConfig, ServeConfig, Server};
pub use stats::ServerStats;
