//! The SPICE-deck front-end: subcircuits, parameters, includes and analysis
//! cards.
//!
//! [`parse_deck`] (and the file-based [`parse_deck_file`]) grow the flat
//! element subset of [`crate::parser`] into a real deck grammar:
//!
//! * `.subckt <name> <ports…>` / `.ends` definitions with `X<name> <nodes…>
//!   <subckt>` instantiation — instances are flattened hierarchically, with
//!   internal nodes named `path.node` and devices `path.name` (`X1.R1`,
//!   `X1.X2.mid`, …), so the solver stack below sees an ordinary flat
//!   [`Circuit`].
//! * `.param <name>=<value>` constants with expression-free `{name}`
//!   substitution in any later token (including subcircuit bodies and other
//!   `.param` values).
//! * `.include <path>` file inclusion with cycle detection (file entry points
//!   only).
//! * `+` continuation lines, `*`/`//` comments and a `.title` card.
//! * Analysis cards parsed into [`Deck::analyses`] / [`Deck::prints`]:
//!   `.tran <step> <stop> [hmax]`, `.op` (and its bare-`.dc` alias),
//!   `.print [tran] v(<node>)…`, `.options gmin=<v>`.
//!
//! The result is a [`Deck`]: the flattened circuit plus everything a driver
//! (the `exi-cli` binary, a batch sweep) needs to run it. [`Deck::to_spice`]
//! writes the exact inverse — full-precision values that reparse
//! bit-identically — which is how the checked-in `tests/decks/*.sp` fixtures
//! are generated from the workload generators.
//!
//! # Examples
//!
//! A deck with a subcircuit, a parameter and analysis cards:
//!
//! ```
//! use exi_netlist::deck::{parse_deck, Analysis};
//!
//! # fn main() -> Result<(), exi_netlist::NetlistError> {
//! let deck = parse_deck(
//!     "* parameterized rc lowpass\n\
//!      .param rload=1k\n\
//!      .subckt lowpass in out\n\
//!      R1 in out {rload}\n\
//!      C1 out 0 1p\n\
//!      .ends\n\
//!      Vin in 0 PULSE(0 1 0 1n 1n 5n)\n\
//!      X1 in out lowpass\n\
//!      .tran 1p 2n\n\
//!      .print v(out)\n\
//!      .end\n",
//! )?;
//! assert_eq!(deck.circuit.num_devices(), 3); // Vin, X1.R1, X1.C1
//! assert!(deck.circuit.unknown_of("X1.out").is_none()); // "out" is a port
//! assert!(deck.circuit.unknown_of("out").is_some());
//! assert_eq!(deck.prints, vec!["out"]);
//! assert!(matches!(deck.analyses[0], Analysis::Tran { .. }));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::circuit::Circuit;
use crate::devices::{Device, MosfetPolarity};
use crate::error::{NetlistError, NetlistResult};
use crate::node::is_ground_name;
use crate::parser::{parse_element, parse_value, tokenize, ElementScope};
use crate::waveform::Waveform;

/// One analysis requested by a deck.
#[derive(Debug, Clone, PartialEq)]
pub enum Analysis {
    /// `.tran <step> <stop> [hmax]` — a transient analysis over
    /// `[0, stop]` seconds with suggested initial step `step` and an optional
    /// step-size ceiling.
    Tran {
        /// Suggested initial step size in seconds.
        step: f64,
        /// End of the simulated interval in seconds.
        stop: f64,
        /// Optional largest step size the adaptive control may grow to.
        h_max: Option<f64>,
    },
    /// `.op` (or a bare `.dc`) — the DC operating point.
    OperatingPoint,
}

/// A parsed SPICE deck: the flattened circuit plus its analysis cards.
///
/// Produced by [`parse_deck`] / [`parse_deck_file`]; consumed by the
/// `exi-cli` front-end, which maps each [`Analysis`] onto a
/// `Simulator` run. [`Deck::to_spice`] serializes the deck back to SPICE
/// text with full-precision values, so `parse(to_spice(deck))` reproduces
/// the circuit bit-for-bit (same `circuit_fingerprint`, same waveforms).
#[derive(Debug, Clone)]
pub struct Deck {
    /// The `.title` card, if present.
    pub title: Option<String>,
    /// The flattened circuit (subcircuits expanded, parameters substituted).
    pub circuit: Circuit,
    /// Analyses in deck order.
    pub analyses: Vec<Analysis>,
    /// Node names collected from `.print` cards, in deck order.
    pub prints: Vec<String>,
    /// `.options reltol=<v>` — the relative error budget a driver should
    /// hand its transient engines (`None` keeps the engine default). The
    /// circuit-level `.options gmin=<v>` is applied to [`Deck::circuit`]
    /// directly.
    pub reltol: Option<f64>,
}

impl Deck {
    /// Wraps an existing circuit in a deck with no analyses or prints.
    pub fn new(circuit: Circuit) -> Self {
        Deck {
            title: None,
            circuit,
            analyses: Vec::new(),
            prints: Vec::new(),
            reltol: None,
        }
    }

    /// The probe names a run of this deck records: the explicit `overrides`
    /// when non-empty, else the deck's `.print` cards, else every non-ground
    /// node in unknown order. Every deck driver (`exi-cli run`/`sweep`, the
    /// `exi-serve` daemon) resolves its probes through this one cascade, so
    /// the same deck probes the same columns everywhere.
    pub fn effective_probes(&self, overrides: &[String]) -> Vec<String> {
        if !overrides.is_empty() {
            return overrides.to_vec();
        }
        if !self.prints.is_empty() {
            return self.prints.clone();
        }
        self.circuit
            .node_names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Serializes the deck to SPICE text that [`parse_deck`] reads back
    /// bit-identically.
    ///
    /// Values are printed with 17 significant digits (every finite `f64`
    /// round-trips exactly), devices in construction order, and the
    /// circuit's `gmin` as an explicit `.options` card — a reparsed deck
    /// therefore has the same [`crate::circuit_fingerprint`] as the
    /// original. This is the generator behind the `tests/decks/*.sp`
    /// fixtures.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Parse`] (with line 0) for circuits that have
    /// no SPICE spelling: device names whose first letter does not match
    /// their kind, or names/nodes containing whitespace or deck
    /// metacharacters.
    pub fn to_spice(&self) -> NetlistResult<String> {
        let mut out = String::new();
        writeln!(out, "* generated by exi-netlist Deck::to_spice").unwrap();
        if let Some(title) = &self.title {
            writeln!(out, ".title {title}").unwrap();
        }
        write!(out, ".options gmin={}", fmt_value(self.circuit.gmin())?).unwrap();
        if let Some(reltol) = self.reltol {
            write!(out, " reltol={}", fmt_value(reltol)?).unwrap();
        }
        out.push('\n');
        for device in self.circuit.devices() {
            out.push_str(&self.device_line(device)?);
            out.push('\n');
        }
        if !self.prints.is_empty() {
            out.push_str(".print tran");
            for p in &self.prints {
                check_token(p, "probe node")?;
                write!(out, " v({p})").unwrap();
            }
            out.push('\n');
        }
        for analysis in &self.analyses {
            match analysis {
                Analysis::Tran { step, stop, h_max } => {
                    write!(out, ".tran {} {}", fmt_value(*step)?, fmt_value(*stop)?).unwrap();
                    if let Some(h) = h_max {
                        write!(out, " {}", fmt_value(*h)?).unwrap();
                    }
                    out.push('\n');
                }
                Analysis::OperatingPoint => out.push_str(".op\n"),
            }
        }
        out.push_str(".end\n");
        Ok(out)
    }

    /// One serialized element line.
    fn device_line(&self, device: &Device) -> NetlistResult<String> {
        let node = |id: &crate::NodeId| -> NetlistResult<String> {
            let name = self.circuit.node_name(*id);
            check_token(name, "node name")?;
            Ok(name.to_string())
        };
        let name = |name: &str, kind: char| -> NetlistResult<String> {
            check_token(name, "device name")?;
            if name
                .chars()
                .next()
                .is_none_or(|c| c.to_ascii_uppercase() != kind)
            {
                return Err(NetlistError::Parse {
                    line: 0,
                    message: format!(
                        "cannot serialize device '{name}': name must start with {kind}"
                    ),
                });
            }
            Ok(name.to_string())
        };
        Ok(match device {
            Device::Resistor {
                name: n,
                a,
                b,
                resistance,
            } => format!(
                "{} {} {} {}",
                name(n, 'R')?,
                node(a)?,
                node(b)?,
                fmt_value(*resistance)?
            ),
            Device::Capacitor {
                name: n,
                a,
                b,
                capacitance,
            } => format!(
                "{} {} {} {}",
                name(n, 'C')?,
                node(a)?,
                node(b)?,
                fmt_value(*capacitance)?
            ),
            Device::Inductor {
                name: n,
                a,
                b,
                inductance,
                ..
            } => format!(
                "{} {} {} {}",
                name(n, 'L')?,
                node(a)?,
                node(b)?,
                fmt_value(*inductance)?
            ),
            Device::VoltageSource {
                name: n,
                pos,
                neg,
                source,
                ..
            } => format!(
                "{} {} {} {}",
                name(n, 'V')?,
                node(pos)?,
                node(neg)?,
                waveform_spec(&self.circuit.sources()[*source].1)?
            ),
            Device::CurrentSource {
                name: n,
                from,
                to,
                source,
            } => format!(
                "{} {} {} {}",
                name(n, 'I')?,
                node(from)?,
                node(to)?,
                waveform_spec(&self.circuit.sources()[*source].1)?
            ),
            Device::Diode {
                name: n,
                anode,
                cathode,
                model,
            } => format!(
                "{} {} {} IS={} N={} VT={} CJ={}",
                name(n, 'D')?,
                node(anode)?,
                node(cathode)?,
                fmt_value(model.saturation_current)?,
                fmt_value(model.emission_coefficient)?,
                fmt_value(model.thermal_voltage)?,
                fmt_value(model.junction_capacitance)?
            ),
            Device::Mosfet {
                name: n,
                drain,
                gate,
                source,
                model,
            } => format!(
                "{} {} {} {} {} W={} L={} VT={} KP={} LAMBDA={} CGS={} CGD={}",
                name(n, 'M')?,
                node(drain)?,
                node(gate)?,
                node(source)?,
                match model.polarity {
                    MosfetPolarity::Nmos => "nmos",
                    MosfetPolarity::Pmos => "pmos",
                },
                fmt_value(model.width)?,
                fmt_value(model.length)?,
                fmt_value(model.threshold)?,
                fmt_value(model.transconductance)?,
                fmt_value(model.lambda)?,
                fmt_value(model.cgs)?,
                fmt_value(model.cgd)?
            ),
        })
    }
}

/// Parses a deck from a string. `.include` cards are rejected (there is no
/// directory to resolve them against) — use [`parse_deck_file`] for decks
/// with includes.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with the offending line number for any
/// malformed card, and propagates device-construction errors.
pub fn parse_deck(text: &str) -> NetlistResult<Deck> {
    parse_deck_with_params(text, &[])
}

/// As [`parse_deck`], with external parameter overrides.
///
/// Each `(name, value)` pair behaves like a `.param name=value` card that
/// wins over every `.param` assignment to the same name inside the deck —
/// the substrate of `exi-cli sweep`, which fans one templated deck across a
/// value list.
///
/// # Errors
///
/// As [`parse_deck`].
pub fn parse_deck_with_params(text: &str, overrides: &[(String, String)]) -> NetlistResult<Deck> {
    let mut lines = Vec::new();
    let mut stack = Vec::new();
    preprocess(text, None, None, &mut stack, &mut lines)?;
    build_deck(&lines, overrides)
}

/// Parses a deck from a file, resolving `.include` cards relative to the
/// including file's directory (with cycle detection). Errors are wrapped
/// with the file name via [`NetlistError::in_spec`].
///
/// # Errors
///
/// As [`parse_deck`], plus [`NetlistError::Parse`] for unreadable or cyclic
/// includes.
pub fn parse_deck_file(path: impl AsRef<Path>) -> NetlistResult<Deck> {
    parse_deck_file_with_params(path, &[])
}

/// As [`parse_deck_file`] with external parameter overrides (see
/// [`parse_deck_with_params`]).
///
/// # Errors
///
/// As [`parse_deck_file`].
pub fn parse_deck_file_with_params(
    path: impl AsRef<Path>,
    overrides: &[(String, String)],
) -> NetlistResult<Deck> {
    let path = path.as_ref();
    let spec = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| {
        NetlistError::Parse {
            line: 0,
            message: format!("cannot read deck: {e}"),
        }
        .in_spec(&spec)
    })?;
    let mut lines = Vec::new();
    // Seed the include stack with the root file so a child including its
    // parent is caught as a cycle.
    let mut stack = vec![path.canonicalize().unwrap_or_else(|_| path.to_path_buf())];
    let base = path.parent().map(Path::to_path_buf);
    preprocess(&text, None, base.as_deref(), &mut stack, &mut lines)
        .and_then(|()| build_deck(&lines, overrides))
        .map_err(|e| e.in_spec(&spec))
}

/// One logical deck line after preprocessing (comments stripped, `+`
/// continuations joined, includes inlined). `origin` is `None` for the
/// top-level source and the include path for included lines, so errors can
/// point at the right file.
#[derive(Debug, Clone)]
struct SourceLine {
    origin: Option<String>,
    number: usize,
    text: String,
}

fn err_at(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

fn with_origin(e: NetlistError, origin: &Option<String>) -> NetlistError {
    match origin {
        Some(file) => e.in_spec(file.clone()),
        None => e,
    }
}

/// Hard ceiling on nested `.include` depth — cycles are caught exactly by
/// the canonical-path stack; this bounds pathological non-cyclic chains.
const MAX_INCLUDE_DEPTH: usize = 32;

/// Strips comments, joins `+` continuation lines and inlines `.include`d
/// files (resolved against `base`, with `stack` carrying the canonical paths
/// currently being expanded for cycle detection).
fn preprocess(
    text: &str,
    origin: Option<&str>,
    base: Option<&Path>,
    stack: &mut Vec<PathBuf>,
    out: &mut Vec<SourceLine>,
) -> NetlistResult<()> {
    let wrap = |e: NetlistError| match origin {
        Some(file) => e.in_spec(file),
        None => e,
    };
    let mut pending: Option<SourceLine> = None;
    for (idx, raw) in text.lines().enumerate() {
        let number = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix('+') {
            let Some(p) = pending.as_mut() else {
                return Err(wrap(err_at(
                    number,
                    "continuation line '+' without a preceding card",
                )));
            };
            p.text.push(' ');
            p.text.push_str(rest.trim());
            continue;
        }
        let first = line.split_whitespace().next().unwrap_or("");
        if first.eq_ignore_ascii_case(".include") {
            if let Some(p) = pending.take() {
                out.push(p);
            }
            let arg = line[first.len()..].trim();
            let arg = arg.trim_matches('"').trim_matches('\'');
            if arg.is_empty() {
                return Err(wrap(err_at(number, ".include: expected a file path")));
            }
            let Some(base) = base else {
                return Err(wrap(err_at(
                    number,
                    ".include requires a file entry point (use parse_deck_file)",
                )));
            };
            let full = base.join(arg);
            let canonical = full.canonicalize().map_err(|e| {
                wrap(err_at(
                    number,
                    format!(".include: cannot resolve '{}': {e}", full.display()),
                ))
            })?;
            if stack.contains(&canonical) {
                return Err(wrap(err_at(
                    number,
                    format!(".include cycle detected at '{arg}'"),
                )));
            }
            if stack.len() >= MAX_INCLUDE_DEPTH {
                return Err(wrap(err_at(
                    number,
                    format!(".include nesting exceeds {MAX_INCLUDE_DEPTH} levels"),
                )));
            }
            let included = std::fs::read_to_string(&canonical).map_err(|e| {
                wrap(err_at(
                    number,
                    format!(".include: cannot read '{}': {e}", full.display()),
                ))
            })?;
            stack.push(canonical.clone());
            let sub_base = canonical.parent().map(Path::to_path_buf);
            preprocess(&included, Some(arg), sub_base.as_deref(), stack, out)?;
            stack.pop();
            continue;
        }
        if let Some(p) = pending.take() {
            out.push(p);
        }
        pending = Some(SourceLine {
            origin: origin.map(str::to_string),
            number,
            text: line.to_string(),
        });
    }
    if let Some(p) = pending.take() {
        out.push(p);
    }
    Ok(())
}

/// A `.param` binding. `locked` entries come from external overrides
/// ([`parse_deck_with_params`]) and win over in-deck assignments; `used`
/// records whether any `{name}` reference ever resolved to this binding, so
/// an override that the deck never reads (a typoed sweep name) fails loudly
/// instead of producing N identical sweep members.
#[derive(Debug, Clone)]
struct Param {
    value: String,
    locked: bool,
    used: std::cell::Cell<bool>,
}

/// A stored `.subckt` definition: declared ports plus the raw body lines,
/// expanded (with parameter substitution) at each instantiation site.
#[derive(Debug, Clone)]
struct Subckt {
    name: String,
    ports: Vec<String>,
    body: Vec<SourceLine>,
    defined_at: usize,
}

/// Whether the card loop keeps scanning after a line.
enum Flow {
    Continue,
    End,
}

struct DeckBuilder {
    title: Option<String>,
    circuit: Circuit,
    analyses: Vec<Analysis>,
    prints: Vec<String>,
    reltol: Option<f64>,
    params: HashMap<String, Param>,
    subckts: HashMap<String, Subckt>,
}

fn build_deck(lines: &[SourceLine], overrides: &[(String, String)]) -> NetlistResult<Deck> {
    let mut params = HashMap::new();
    for (name, value) in overrides {
        params.insert(
            name.trim().to_ascii_lowercase(),
            Param {
                value: value.clone(),
                locked: true,
                used: std::cell::Cell::new(false),
            },
        );
    }
    let mut b = DeckBuilder {
        title: None,
        circuit: Circuit::new(),
        analyses: Vec::new(),
        prints: Vec::new(),
        reltol: None,
        params,
        subckts: HashMap::new(),
    };
    // The `.subckt` currently being collected, if any.
    let mut open: Option<Subckt> = None;
    for line in lines {
        match b
            .handle_line(line, &mut open)
            .map_err(|e| with_origin(e, &line.origin))?
        {
            Flow::Continue => {}
            Flow::End => break,
        }
    }
    if let Some(sub) = open {
        return Err(err_at(
            sub.defined_at,
            format!("unterminated .subckt '{}' (missing .ends)", sub.name),
        ));
    }
    // An override nothing ever substituted is a typoed sweep name: every
    // member would parse identically under a misleading label.
    for (name, param) in &b.params {
        if param.locked && !param.used.get() {
            return Err(err_at(
                0,
                format!("parameter override '{name}' is never referenced by the deck"),
            ));
        }
    }
    Ok(Deck {
        title: b.title,
        circuit: b.circuit,
        analyses: b.analyses,
        prints: b.prints,
        reltol: b.reltol,
    })
}

impl DeckBuilder {
    fn handle_line(&mut self, line: &SourceLine, open: &mut Option<Subckt>) -> NetlistResult<Flow> {
        let tokens = tokenize(&line.text);
        let Some(first) = tokens.first() else {
            return Ok(Flow::Continue);
        };
        let number = line.number;
        let card = first.to_ascii_lowercase();

        // Inside a .subckt definition only .ends closes; element and X lines
        // are collected raw (substitution happens per instantiation), and
        // every other card is rejected.
        if let Some(sub) = open.as_mut() {
            if card == ".ends" {
                if let Some(name) = tokens.get(1) {
                    if !name.eq_ignore_ascii_case(&sub.name) {
                        return Err(err_at(
                            number,
                            format!(".ends {}: does not match .subckt '{}'", name, sub.name),
                        ));
                    }
                }
                let sub = open.take().expect("open subckt");
                self.subckts.insert(sub.name.to_ascii_lowercase(), sub);
                return Ok(Flow::Continue);
            }
            if card == ".subckt" {
                return Err(err_at(
                    number,
                    "nested .subckt definitions are not supported",
                ));
            }
            if card.starts_with('.') {
                return Err(err_at(
                    number,
                    format!("card '{card}' is not allowed inside .subckt"),
                ));
            }
            sub.body.push(line.clone());
            return Ok(Flow::Continue);
        }

        if card.starts_with('.') {
            return self.handle_card(&card, &tokens, line, open);
        }
        let kind = first.chars().next().unwrap_or(' ').to_ascii_uppercase();
        let tokens = self.substitute_tokens(&tokens, number)?;
        if kind == 'X' {
            let mut stack = Vec::new();
            self.expand_instance(&tokens, number, None, &mut stack)?;
        } else {
            parse_element(&mut self.circuit, &tokens, number, None)?;
        }
        Ok(Flow::Continue)
    }

    fn handle_card(
        &mut self,
        card: &str,
        tokens: &[String],
        line: &SourceLine,
        open: &mut Option<Subckt>,
    ) -> NetlistResult<Flow> {
        let number = line.number;
        match card {
            ".end" => return Ok(Flow::End),
            ".title" => {
                let rest = line.text[tokens[0].len()..].trim();
                self.title = (!rest.is_empty()).then(|| rest.to_string());
            }
            ".subckt" => {
                if tokens.len() < 3 {
                    return Err(err_at(number, ".subckt: expected <name> <port> [ports...]"));
                }
                let name = tokens[1].clone();
                if self.subckts.contains_key(&name.to_ascii_lowercase()) {
                    return Err(err_at(number, format!("duplicate .subckt '{name}'")));
                }
                if tokens[2..].iter().any(|t| t.contains('=')) {
                    return Err(err_at(
                        number,
                        ".subckt: parameterized ports are not supported",
                    ));
                }
                // Ground is global: a port named `0`/`gnd` would be silently
                // shorted to ground by node resolution instead of mapping to
                // its connection, so reject the shadowing outright.
                if let Some(port) = tokens[2..].iter().find(|t| is_ground_name(t)) {
                    return Err(err_at(
                        number,
                        format!(
                            ".subckt {name}: port '{port}' shadows the global ground node; \
                             ground needs no port"
                        ),
                    ));
                }
                *open = Some(Subckt {
                    name,
                    ports: tokens[2..].to_vec(),
                    body: Vec::new(),
                    defined_at: number,
                });
            }
            ".ends" => return Err(err_at(number, ".ends without a matching .subckt")),
            ".param" => {
                if tokens.len() < 2 {
                    return Err(err_at(number, ".param: expected <name>=<value>"));
                }
                for t in &tokens[1..] {
                    let Some((key, value)) = t.split_once('=') else {
                        return Err(err_at(
                            number,
                            format!(".param: expected <name>=<value>, got '{t}'"),
                        ));
                    };
                    let key = key.trim().to_ascii_lowercase();
                    if key.is_empty() || value.trim().is_empty() {
                        return Err(err_at(
                            number,
                            format!(".param: expected <name>=<value>, got '{t}'"),
                        ));
                    }
                    // References to earlier parameters resolve at definition
                    // time, so substitution is always a single pass.
                    let value = self.substitute(value.trim(), number)?;
                    match self.params.get(&key) {
                        // External overrides (sweep members) win over in-deck
                        // assignments.
                        Some(p) if p.locked => {}
                        _ => {
                            self.params.insert(
                                key,
                                Param {
                                    value,
                                    locked: false,
                                    used: std::cell::Cell::new(false),
                                },
                            );
                        }
                    }
                }
            }
            ".tran" => {
                let args = self.substitute_tokens(&tokens[1..], number)?;
                if args.len() < 2 || args.len() > 3 {
                    return Err(err_at(number, ".tran: expected <step> <stop> [hmax]"));
                }
                let mut values = [0.0; 3];
                for (slot, t) in values.iter_mut().zip(&args) {
                    *slot = parse_value(t)
                        .ok_or_else(|| err_at(number, format!(".tran: bad value '{t}'")))?;
                }
                self.analyses.push(Analysis::Tran {
                    step: values[0],
                    stop: values[1],
                    h_max: (args.len() == 3).then_some(values[2]),
                });
            }
            ".op" | ".dc" => {
                if tokens.len() > 1 {
                    return Err(err_at(
                        number,
                        format!(
                            "{card}: source sweeps are not supported; parameterize the deck \
                             with .param and sweep externally (exi-cli sweep)"
                        ),
                    ));
                }
                self.analyses.push(Analysis::OperatingPoint);
            }
            ".print" => {
                let tokens = self.substitute_tokens(&tokens[1..], number)?;
                let mut args = &tokens[..];
                // An optional leading analysis-type selector is accepted and
                // ignored (prints always follow the deck's analyses here).
                if args.first().is_some_and(|t| {
                    ["tran", "dc", "op"].contains(&t.to_ascii_lowercase().as_str())
                }) {
                    args = &args[1..];
                }
                if args.is_empty() {
                    return Err(err_at(number, ".print: expected at least one v(<node>)"));
                }
                for t in args {
                    let lower = t.to_ascii_lowercase();
                    if let Some(inner) = lower.strip_prefix("v(").and_then(|r| r.strip_suffix(')'))
                    {
                        if inner.trim().is_empty() {
                            return Err(err_at(number, ".print: empty v() probe"));
                        }
                        // Preserve the node's original case.
                        let inner = t[2..t.len() - 1].trim().to_string();
                        self.prints.push(inner);
                    } else if lower.contains('(') {
                        return Err(err_at(
                            number,
                            format!(".print: only v(<node>) probes are supported, got '{t}'"),
                        ));
                    } else {
                        self.prints.push(t.clone());
                    }
                }
            }
            ".options" => {
                for t in self.substitute_tokens(&tokens[1..], number)? {
                    let Some((key, value)) = t.split_once('=') else {
                        return Err(err_at(
                            number,
                            format!(".options: expected <key>=<value>, got '{t}'"),
                        ));
                    };
                    match key.trim().to_ascii_lowercase().as_str() {
                        "gmin" => {
                            let v = parse_value(value).ok_or_else(|| {
                                err_at(number, format!(".options: bad gmin value '{value}'"))
                            })?;
                            self.circuit.set_gmin(v);
                        }
                        "reltol" => {
                            let v = parse_value(value).ok_or_else(|| {
                                err_at(number, format!(".options: bad reltol value '{value}'"))
                            })?;
                            self.reltol = Some(v);
                        }
                        other => {
                            return Err(err_at(
                                number,
                                format!(".options: unknown option '{other}'"),
                            ))
                        }
                    }
                }
            }
            ".include" => {
                // Consumed during preprocessing; reaching here means the
                // preprocessor was bypassed.
                return Err(err_at(number, ".include was not preprocessed"));
            }
            other => return Err(err_at(number, format!("unknown card '{other}'"))),
        }
        Ok(Flow::Continue)
    }

    /// Expands one `X<name> <nodes…> <subckt>` instance into the flat
    /// circuit. `outer` is the enclosing scope for nested instances; `stack`
    /// carries the subcircuit names currently being expanded so recursive
    /// instantiation fails instead of diverging.
    fn expand_instance(
        &mut self,
        tokens: &[String],
        line_no: usize,
        outer: Option<&ElementScope>,
        stack: &mut Vec<String>,
    ) -> NetlistResult<()> {
        let inst = tokens[0].clone();
        if tokens.len() < 2 {
            return Err(err_at(
                line_no,
                format!("{inst}: expected <nodes...> <subckt-name>"),
            ));
        }
        if tokens[1..].iter().any(|t| t.contains('=')) {
            return Err(err_at(
                line_no,
                format!("{inst}: instance parameters are not supported (use .param)"),
            ));
        }
        let sub_ref = tokens.last().expect("len >= 2");
        let key = sub_ref.to_ascii_lowercase();
        let Some(sub) = self.subckts.get(&key).cloned() else {
            return Err(err_at(
                line_no,
                format!("{inst}: unknown subcircuit '{sub_ref}'"),
            ));
        };
        let connections = &tokens[1..tokens.len() - 1];
        if connections.len() != sub.ports.len() {
            return Err(err_at(
                line_no,
                format!(
                    "{inst}: subcircuit '{}' has {} port(s), got {} connection(s)",
                    sub.name,
                    sub.ports.len(),
                    connections.len()
                ),
            ));
        }
        if stack.contains(&key) {
            return Err(err_at(
                line_no,
                format!(
                    "{inst}: recursive instantiation of subcircuit '{}'",
                    sub.name
                ),
            ));
        }
        let path = match outer {
            Some(scope) => format!("{}.{}", scope.path, inst),
            None => inst.clone(),
        };
        let mut ports = HashMap::new();
        for (port, conn) in sub.ports.iter().zip(connections) {
            let resolved = match outer {
                Some(scope) => scope.resolve_node(conn),
                None => conn.clone(),
            };
            // Register connection nodes in instance order, before any
            // internal body node: node numbering then follows the deck text,
            // not the subcircuit's internals.
            self.circuit.node(&resolved);
            ports.insert(port.clone(), resolved);
        }
        let scope = ElementScope { path, ports };
        stack.push(key);
        for body_line in &sub.body {
            let raw = tokenize(&body_line.text);
            let result = self
                .substitute_tokens(&raw, body_line.number)
                .and_then(|toks| {
                    let kind = toks
                        .first()
                        .and_then(|t| t.chars().next())
                        .unwrap_or(' ')
                        .to_ascii_uppercase();
                    if kind == 'X' {
                        self.expand_instance(&toks, body_line.number, Some(&scope), stack)
                    } else {
                        parse_element(&mut self.circuit, &toks, body_line.number, Some(&scope))
                    }
                });
            result.map_err(|e| {
                with_origin(e, &body_line.origin)
                    .in_spec(format!("{} (.subckt {})", scope.path, sub.name))
            })?;
        }
        stack.pop();
        Ok(())
    }

    fn substitute_tokens(&self, tokens: &[String], line: usize) -> NetlistResult<Vec<String>> {
        tokens.iter().map(|t| self.substitute(t, line)).collect()
    }

    /// Replaces every `{name}` reference in `token` with the parameter's
    /// value (single pass — substituted text is taken verbatim).
    fn substitute(&self, token: &str, line: usize) -> NetlistResult<String> {
        if !token.contains('{') {
            if token.contains('}') {
                return Err(err_at(line, format!("unbalanced '}}' in '{token}'")));
            }
            return Ok(token.to_string());
        }
        let mut out = String::with_capacity(token.len());
        let mut rest = token;
        while let Some(open) = rest.find('{') {
            let prefix = &rest[..open];
            if prefix.contains('}') {
                return Err(err_at(line, format!("unbalanced '}}' in '{token}'")));
            }
            out.push_str(prefix);
            let after = &rest[open + 1..];
            let Some(close) = after.find('}') else {
                return Err(err_at(line, format!("unbalanced '{{' in '{token}'")));
            };
            let name = after[..close].trim().to_ascii_lowercase();
            let Some(param) = self.params.get(&name) else {
                return Err(err_at(
                    line,
                    format!("unknown parameter '{{{name}}}' (define it with .param)"),
                ));
            };
            param.used.set(true);
            out.push_str(&param.value);
            rest = &after[close + 1..];
        }
        if rest.contains('}') {
            return Err(err_at(line, format!("unbalanced '}}' in '{token}'")));
        }
        out.push_str(rest);
        Ok(out)
    }
}

/// Formats a value with 17 significant digits — every finite `f64`
/// round-trips exactly through [`parse_value`].
fn fmt_value(v: f64) -> NetlistResult<String> {
    if !v.is_finite() {
        return Err(NetlistError::Parse {
            line: 0,
            message: format!("cannot serialize non-finite value {v}"),
        });
    }
    Ok(format!("{v:.17e}"))
}

/// Rejects names that would not survive tokenization.
fn check_token(token: &str, what: &str) -> NetlistResult<()> {
    let clean = !token.is_empty()
        && !token.starts_with('.')
        && !token.starts_with('+')
        && !token.starts_with('*')
        && !token
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | '{' | '}' | '=' | '"'));
    if clean {
        Ok(())
    } else {
        Err(NetlistError::Parse {
            line: 0,
            message: format!("cannot serialize {what} '{token}'"),
        })
    }
}

/// Serializes a source waveform as the parser's source specification.
fn waveform_spec(w: &Waveform) -> NetlistResult<String> {
    Ok(match w {
        Waveform::Dc(v) => format!("DC {}", fmt_value(*v)?),
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => {
            let mut s = format!(
                "PULSE({} {} {} {} {} {}",
                fmt_value(*v1)?,
                fmt_value(*v2)?,
                fmt_value(*delay)?,
                fmt_value(*rise)?,
                fmt_value(*fall)?,
                fmt_value(*width)?
            );
            // An omitted 7th argument reparses as an infinite period
            // (single pulse).
            if period.is_finite() {
                s.push(' ');
                s.push_str(&fmt_value(*period)?);
            }
            s.push(')');
            s
        }
        Waveform::Pwl(points) => {
            if points.is_empty() {
                return Err(NetlistError::Parse {
                    line: 0,
                    message: "cannot serialize an empty PWL waveform".to_string(),
                });
            }
            let mut s = String::from("PWL(");
            for (i, (t, v)) in points.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                write!(s, "{} {}", fmt_value(*t)?, fmt_value(*v)?).unwrap();
            }
            s.push(')');
            s
        }
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
            delay,
            damping,
        } => format!(
            "SIN({} {} {} {} {})",
            fmt_value(*offset)?,
            fmt_value(*amplitude)?,
            fmt_value(*frequency)?,
            fmt_value(*delay)?,
            fmt_value(*damping)?
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{inverter_chain, power_grid, InverterChainSpec, PowerGridSpec};
    use crate::plan::circuit_fingerprint;
    use crate::Waveform;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exi_deck_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn subcircuit_flattens_to_the_hand_built_fingerprint() {
        let deck = parse_deck(
            ".subckt divider top bot\n\
             R1 top mid 1k\n\
             R2 mid bot 2k\n\
             C1 mid 0 1p\n\
             .ends divider\n\
             Vin in 0 DC 1\n\
             X1 in out divider\n\
             X2 out 0 divider\n\
             .end\n",
        )
        .unwrap();
        // Hand-built twin with the same construction order.
        let mut twin = Circuit::new();
        let vin = twin.node("in");
        let gnd = twin.node("0");
        twin.add_voltage_source("Vin", vin, gnd, Waveform::Dc(1.0))
            .unwrap();
        let out = twin.node("out");
        let m1 = twin.node("X1.mid");
        twin.add_resistor("X1.R1", vin, m1, 1e3).unwrap();
        twin.add_resistor("X1.R2", m1, out, 2e3).unwrap();
        twin.add_capacitor("X1.C1", m1, gnd, 1e-12).unwrap();
        let m2 = twin.node("X2.mid");
        twin.add_resistor("X2.R1", out, m2, 1e3).unwrap();
        twin.add_resistor("X2.R2", m2, gnd, 2e3).unwrap();
        twin.add_capacitor("X2.C1", m2, gnd, 1e-12).unwrap();
        assert_eq!(
            circuit_fingerprint(&deck.circuit),
            circuit_fingerprint(&twin)
        );
        // The hierarchical names are addressable.
        assert!(deck.circuit.unknown_of("X1.mid").is_some());
        assert!(deck.circuit.unknown_of("X2.mid").is_some());
        assert_eq!(deck.circuit.num_devices(), 7);
    }

    #[test]
    fn nested_subcircuits_flatten_with_dotted_paths() {
        let deck = parse_deck(
            ".subckt leg a b\n\
             R1 a b 100\n\
             .ends\n\
             .subckt pair top bot\n\
             X1 top mid leg\n\
             X2 mid bot leg\n\
             .ends\n\
             V1 in 0 DC 1\n\
             Xp in 0 pair\n",
        )
        .unwrap();
        assert!(deck.circuit.unknown_of("Xp.mid").is_some());
        assert_eq!(deck.circuit.num_devices(), 3);
        let names: Vec<_> = deck
            .circuit
            .devices()
            .iter()
            .map(|d| d.name().to_string())
            .collect();
        assert!(names.contains(&"Xp.X1.R1".to_string()), "{names:?}");
        assert!(names.contains(&"Xp.X2.R1".to_string()), "{names:?}");
    }

    #[test]
    fn params_substitute_in_elements_cards_and_bodies() {
        let deck = parse_deck(
            ".param rbase=1k\n\
             .param rload={rbase}\n\
             .param tstop=2n\n\
             .subckt load a\n\
             R1 a 0 {rload}\n\
             .ends\n\
             V1 in 0 DC 1\n\
             X1 in load\n\
             R2 in 0 {rbase}\n\
             .tran 1p {tstop}\n",
        )
        .unwrap();
        match &deck.circuit.devices()[1] {
            Device::Resistor { resistance, .. } => assert_eq!(*resistance, 1e3),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            deck.analyses,
            vec![Analysis::Tran {
                step: 1e-12,
                stop: 2e-9,
                h_max: None
            }]
        );
    }

    #[test]
    fn param_overrides_win_over_deck_assignments() {
        let text = ".param r=1k\nV1 a 0 DC 1\nR1 a 0 {r}\n";
        let plain = parse_deck(text).unwrap();
        let swept = parse_deck_with_params(text, &[("R".to_string(), "5k".to_string())]).unwrap();
        let res = |d: &Deck| match &d.circuit.devices()[1] {
            Device::Resistor { resistance, .. } => *resistance,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(res(&plain), 1e3);
        assert_eq!(res(&swept), 5e3);
    }

    #[test]
    fn analysis_and_print_cards_are_collected() {
        let deck = parse_deck(
            ".title a tiny deck\n\
             V1 a 0 DC 1\n\
             R1 a b 1k\n\
             C1 b 0 1p\n\
             .options gmin=1e-9 reltol=1m\n\
             .op\n\
             .tran 1p 1n 10p\n\
             .print tran v(b) a\n\
             .end\n\
             R2 ignored 0 1\n",
        )
        .unwrap();
        assert_eq!(deck.title.as_deref(), Some("a tiny deck"));
        assert_eq!(deck.circuit.gmin(), 1e-9);
        assert_eq!(deck.reltol, Some(1e-3));
        assert_eq!(deck.analyses.len(), 2);
        assert_eq!(deck.analyses[0], Analysis::OperatingPoint);
        assert_eq!(
            deck.analyses[1],
            Analysis::Tran {
                step: 1e-12,
                stop: 1e-9,
                h_max: Some(1e-11)
            }
        );
        assert_eq!(deck.prints, vec!["b", "a"]);
        // Everything after .end is ignored.
        assert_eq!(deck.circuit.num_devices(), 3);
    }

    #[test]
    fn continuation_lines_join() {
        let deck = parse_deck(
            "V1 in 0\n\
             + PULSE(0 1 0\n\
             + 1n 1n 5n)\n\
             R1 in 0 1k\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.num_sources(), 1);
        assert!(parse_deck("+ R1 a 0 1k\n").is_err());
    }

    #[test]
    fn malformed_subckt_cards_are_rejected_with_line_numbers() {
        // Missing ports on the definition.
        let e = parse_deck("V1 a 0 DC 1\n.subckt noports\n.ends\n").unwrap_err();
        assert!(matches!(e, NetlistError::Parse { line: 2, .. }), "{e:?}");
        // Wrong connection arity at the instance.
        let e =
            parse_deck(".subckt two a b\nR1 a b 1\n.ends\nV1 x 0 DC 1\nX1 x two\n").unwrap_err();
        assert!(matches!(e, NetlistError::Parse { line: 5, .. }), "{e:?}");
        assert!(e.to_string().contains("port"), "{e}");
        // Unknown subcircuit.
        let e = parse_deck("V1 a 0 DC 1\nX1 a 0 nope\n").unwrap_err();
        assert!(e.to_string().contains("unknown subcircuit"), "{e}");
        // Unterminated definition.
        let e = parse_deck(".subckt open a b\nR1 a b 1\n").unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
        // .ends without .subckt, and mismatched .ends name.
        assert!(parse_deck(".ends\n").is_err());
        assert!(parse_deck(".subckt s a b\nR1 a b 1\n.ends other\n").is_err());
        // Cards inside a body.
        let e = parse_deck(".subckt s a b\n.tran 1p 1n\n.ends\n").unwrap_err();
        assert!(e.to_string().contains("not allowed inside"), "{e}");
        // Duplicate definition.
        assert!(
            parse_deck(".subckt s a b\nR1 a b 1\n.ends\n.subckt S a b\nR1 a b 1\n.ends\n").is_err()
        );
    }

    #[test]
    fn ground_named_ports_are_rejected() {
        // Ground is global: a port named `0`/`gnd` would be silently shorted
        // to ground instead of mapping to its connection.
        for port in ["0", "gnd", "GND", "ground"] {
            let e = parse_deck(&format!(
                ".subckt bad a {port}\nR1 a {port} 1k\n.ends\nV1 x 0 DC 1\nX1 x y bad\n"
            ))
            .unwrap_err();
            assert!(e.to_string().contains("ground"), "{port}: {e}");
        }
        // Ground *references* inside a body remain fine without a port.
        let deck = parse_deck(".subckt tie a\nR1 a 0 1k\n.ends\nV1 x 0 DC 1\nX1 x tie\n").unwrap();
        assert_eq!(deck.circuit.num_devices(), 2);
    }

    #[test]
    fn unused_parameter_overrides_are_rejected() {
        let text = ".param rload=1k\nV1 a 0 DC 1\nR1 a 0 {rload}\n";
        // A typoed sweep name would silently run N identical members.
        let e =
            parse_deck_with_params(text, &[("rloda".to_string(), "2k".to_string())]).unwrap_err();
        assert!(e.to_string().contains("never referenced"), "{e}");
        // The correctly spelled override is fine.
        assert!(parse_deck_with_params(text, &[("rload".to_string(), "2k".to_string())]).is_ok());
    }

    #[test]
    fn print_cards_substitute_parameters() {
        let deck = parse_deck(
            ".param probe=out\nV1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n.print v({probe})\n",
        )
        .unwrap();
        assert_eq!(deck.prints, vec!["out"]);
    }

    #[test]
    fn recursive_instantiation_is_rejected() {
        // Direct self-instantiation.
        let e = parse_deck(".subckt loop a b\nX1 a b loop\n.ends\nV1 x 0 DC 1\nX1 x 0 loop\n")
            .unwrap_err();
        assert!(e.to_string().contains("recursive"), "{e}");
        // Mutual recursion.
        let e = parse_deck(
            ".subckt ping a\nX1 a pong\n.ends\n\
             .subckt pong a\nX1 a ping\n.ends\n\
             V1 x 0 DC 1\nX1 x ping\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("recursive"), "{e}");
    }

    #[test]
    fn unknown_cards_params_and_probes_are_rejected() {
        let e = parse_deck("V1 a 0 DC 1\n.wibble 3\n").unwrap_err();
        assert!(e.to_string().contains("unknown card"), "{e}");
        let e = parse_deck("R1 a 0 {missing}\n").unwrap_err();
        assert!(e.to_string().contains("unknown parameter"), "{e}");
        assert!(parse_deck("R1 a 0 {unclosed\n").is_err());
        assert!(parse_deck("R1 a 0 1k}\n").is_err());
        assert!(parse_deck(".param\n").is_err());
        assert!(parse_deck(".param novalue\n").is_err());
        let e = parse_deck("V1 a 0 DC 1\n.print i(V1)\n").unwrap_err();
        assert!(e.to_string().contains("v(<node>)"), "{e}");
        assert!(parse_deck(".print\nV1 a 0 DC 1\n").is_err());
        let e = parse_deck(".options abstol=1e-12\n").unwrap_err();
        assert!(e.to_string().contains("unknown option"), "{e}");
        let e = parse_deck("V1 a 0 DC 1\n.dc V1 0 1 0.1\n").unwrap_err();
        assert!(e.to_string().contains("not supported"), "{e}");
        assert!(parse_deck(".tran 1p\n").is_err());
        assert!(parse_deck(".tran 1p 1n 1p 1p\n").is_err());
        assert!(parse_deck(".tran bogus 1n\n").is_err());
        // Instance parameters are not supported.
        let e = parse_deck(".subckt s a\nR1 a 0 1\n.ends\nV1 x 0 DC 1\nX1 x s m=2\n").unwrap_err();
        assert!(e.to_string().contains("instance parameters"), "{e}");
    }

    #[test]
    fn include_requires_a_file_entry_point() {
        let e = parse_deck(".include sub.inc\nR1 a 0 1\n").unwrap_err();
        assert!(e.to_string().contains("file entry point"), "{e}");
    }

    #[test]
    fn include_resolves_relative_paths_and_detects_cycles() {
        let dir = tmp_dir("include");
        std::fs::write(
            dir.join("top.sp"),
            "V1 in 0 DC 1\n.include sub/load.inc\n.tran 1p 1n\n",
        )
        .unwrap();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("sub/load.inc"), "R1 in out 1k\n.include cap.inc\n").unwrap();
        std::fs::write(dir.join("sub/cap.inc"), "C1 out 0 1p\n").unwrap();
        let deck = parse_deck_file(dir.join("top.sp")).unwrap();
        assert_eq!(deck.circuit.num_devices(), 3);
        assert_eq!(deck.analyses.len(), 1);

        // A cycle: a.inc includes b.inc includes a.inc.
        std::fs::write(dir.join("a.sp"), ".include b.inc\n").unwrap();
        std::fs::write(dir.join("b.inc"), "R1 x 0 1\n.include c.inc\n").unwrap();
        std::fs::write(dir.join("c.inc"), ".include b.inc\n").unwrap();
        let e = parse_deck_file(dir.join("a.sp")).unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
        // A file including itself.
        std::fs::write(dir.join("self.sp"), ".include self.sp\n").unwrap();
        let e = parse_deck_file(dir.join("self.sp")).unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
        // Missing include file.
        std::fs::write(dir.join("miss.sp"), ".include not_there.inc\n").unwrap();
        assert!(parse_deck_file(dir.join("miss.sp")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_errors_carry_the_file_context() {
        let dir = tmp_dir("context");
        std::fs::write(dir.join("bad.sp"), "V1 a 0 DC 1\n.include inner.inc\n").unwrap();
        std::fs::write(dir.join("inner.inc"), "* fine\nR1 a 0 notavalue\n").unwrap();
        let e = parse_deck_file(dir.join("bad.sp")).unwrap_err();
        let text = e.to_string();
        assert!(text.contains("bad.sp"), "{text}");
        assert!(text.contains("inner.inc"), "{text}");
        assert!(
            matches!(e.root_cause(), NetlistError::Parse { line: 2, .. }),
            "{e:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_inside_subckt_bodies_name_the_instance_path() {
        let e = parse_deck(".subckt bad a\nR1 a 0 -5\n.ends\nV1 x 0 DC 1\nX7 x bad\n").unwrap_err();
        let text = e.to_string();
        assert!(text.contains("X7"), "{text}");
        assert!(text.contains("bad"), "{text}");
    }

    #[test]
    fn generator_circuits_round_trip_through_spice_text() {
        let grid = power_grid(&PowerGridSpec {
            rows: 3,
            cols: 3,
            num_sinks: 2,
            ..PowerGridSpec::default()
        })
        .unwrap();
        let chain = inverter_chain(&InverterChainSpec {
            stages: 2,
            ..InverterChainSpec::default()
        })
        .unwrap();
        for original in [grid, chain] {
            let mut deck = Deck::new(original.clone());
            deck.analyses.push(Analysis::Tran {
                step: 1e-12,
                stop: 5e-10,
                h_max: Some(2e-11),
            });
            deck.prints.push("vdd".to_string());
            deck.reltol = Some(1e-3);
            let text = deck.to_spice().unwrap();
            let back = parse_deck(&text).unwrap();
            assert_eq!(
                circuit_fingerprint(&back.circuit),
                circuit_fingerprint(&original),
                "round-trip changed the circuit fingerprint"
            );
            assert_eq!(back.analyses, deck.analyses);
            assert_eq!(back.prints, deck.prints);
            assert_eq!(back.reltol, deck.reltol);
            // Waveforms round-trip exactly too (the fingerprint excludes
            // them).
            for ((_, w0), (_, w1)) in original.sources().iter().zip(back.circuit.sources()) {
                assert_eq!(w0, w1);
            }
        }
    }

    #[test]
    fn to_spice_rejects_unserializable_names() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a b"); // embedded whitespace
        let gnd = ckt.node("0");
        ckt.add_resistor("R1", a, gnd, 1.0).unwrap();
        assert!(Deck::new(ckt).to_spice().is_err());
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_resistor("weird", a, gnd, 1.0).unwrap();
        let e = Deck::new(ckt).to_spice().unwrap_err();
        assert!(e.to_string().contains("must start with R"), "{e}");
    }
}
