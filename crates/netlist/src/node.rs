//! Circuit nodes and the mapping from node names to MNA unknowns.

use std::collections::HashMap;

/// Identifier of a circuit node.
///
/// Node `0` is always the ground/reference node; it never contributes an
/// unknown to the MNA system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Returns `true` if this is the ground node.
    pub fn is_ground(&self) -> bool {
        self.0 == 0
    }

    /// Index of this node's voltage unknown in the MNA vector, or `None` for
    /// ground.
    pub fn unknown(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Registry of node names.
#[derive(Debug, Clone, Default)]
pub struct NodeMap {
    names: HashMap<String, NodeId>,
    labels: Vec<String>,
    next: usize,
}

impl NodeMap {
    /// Creates an empty registry containing only the ground node (named `0`,
    /// `gnd` or `GND`).
    pub fn new() -> Self {
        NodeMap {
            names: HashMap::new(),
            labels: vec!["0".to_string()],
            next: 1,
        }
    }

    /// Returns the node for `name`, creating it if necessary.
    ///
    /// The names `0`, `gnd`, `GND`, `ground` and `vss!`-style ground aliases
    /// all map to [`NodeId::GROUND`].
    pub fn node(&mut self, name: &str) -> NodeId {
        if is_ground_name(name) {
            return NodeId::GROUND;
        }
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = NodeId(self.next);
        self.next += 1;
        self.names.insert(name.to_string(), id);
        self.labels.push(name.to_string());
        id
    }

    /// Looks up an existing node without creating it.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        if is_ground_name(name) {
            Some(NodeId::GROUND)
        } else {
            self.names.get(name).copied()
        }
    }

    /// Name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.labels[id.0]
    }

    /// Number of non-ground nodes.
    pub fn num_nodes(&self) -> usize {
        self.next - 1
    }

    /// Iterates over `(name, id)` pairs of non-ground nodes.
    pub fn iter(&self) -> impl Iterator<Item = (&str, NodeId)> {
        self.names.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

pub(crate) fn is_ground_name(name: &str) -> bool {
    matches!(name, "0") || name.eq_ignore_ascii_case("gnd") || name.eq_ignore_ascii_case("ground")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut m = NodeMap::new();
        assert!(m.node("0").is_ground());
        assert!(m.node("gnd").is_ground());
        assert!(m.node("GND").is_ground());
        assert!(m.node("ground").is_ground());
        assert_eq!(m.num_nodes(), 0);
        assert_eq!(NodeId::GROUND.unknown(), None);
    }

    #[test]
    fn nodes_are_created_once() {
        let mut m = NodeMap::new();
        let a = m.node("in");
        let b = m.node("out");
        let a2 = m.node("in");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(m.num_nodes(), 2);
        assert_eq!(a.unknown(), Some(0));
        assert_eq!(b.unknown(), Some(1));
        assert_eq!(m.name(a), "in");
        assert_eq!(m.find("out"), Some(b));
        assert_eq!(m.find("nope"), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeId::GROUND.to_string(), "gnd");
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
