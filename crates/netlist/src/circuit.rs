//! The circuit data model and MNA assembly.

use std::collections::HashSet;

use exi_sparse::{CsrMatrix, TripletMatrix};

use crate::devices::{Device, DiodeModel, MosfetModel, StampContext};
use crate::error::{NetlistError, NetlistResult};
use crate::node::{NodeId, NodeMap};
use crate::waveform::Waveform;

/// Result of evaluating all devices at a state vector `x`.
///
/// Together these describe the linearization the integrators work with:
/// `C(x)·dx/dt + f(x) = B·u(t)` with `G(x) = ∂f/∂x` and `C(x) = ∂q/∂x`.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Capacitance/inductance Jacobian `C(x)`.
    pub c: CsrMatrix,
    /// Conductance/resistance Jacobian `G(x)`.
    pub g: CsrMatrix,
    /// Static current vector `f(x)`.
    pub f: Vec<f64>,
    /// Charge/flux vector `q(x)`.
    pub q: Vec<f64>,
}

/// A flat transistor-level circuit.
///
/// # Examples
///
/// ```
/// use exi_netlist::{Circuit, Waveform};
///
/// # fn main() -> Result<(), exi_netlist::NetlistError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let vout = ckt.node("out");
/// let gnd = ckt.node("0");
/// ckt.add_voltage_source("Vin", vin, gnd, Waveform::Dc(1.0))?;
/// ckt.add_resistor("R1", vin, vout, 1e3)?;
/// ckt.add_capacitor("C1", vout, gnd, 1e-12)?;
/// assert_eq!(ckt.num_unknowns(), 3); // two node voltages + one branch current
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    nodes: NodeMap,
    devices: Vec<Device>,
    device_names: HashSet<String>,
    sources: Vec<(String, Waveform)>,
    num_branches: usize,
    gmin: f64,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit {
            nodes: NodeMap::new(),
            devices: Vec::new(),
            device_names: HashSet::new(),
            sources: Vec::new(),
            num_branches: 0,
            gmin: 1e-12,
        }
    }

    /// Returns the node with the given name, creating it if needed.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.nodes.node(name)
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.find(name)
    }

    /// Index of the voltage unknown for a named node, if it exists and is not
    /// ground.
    pub fn unknown_of(&self, name: &str) -> Option<usize> {
        self.nodes.find(name).and_then(|n| n.unknown())
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.nodes.name(id)
    }

    /// Number of non-ground nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.num_nodes()
    }

    /// Names of every non-ground node, ordered by voltage-unknown index —
    /// the default probe set of front-ends that were not told what to
    /// record.
    pub fn node_names(&self) -> Vec<&str> {
        let mut pairs: Vec<(usize, &str)> = self
            .nodes
            .iter()
            .filter_map(|(name, id)| id.unknown().map(|u| (u, name)))
            .collect();
        pairs.sort_unstable();
        pairs.into_iter().map(|(_, name)| name).collect()
    }

    /// Human-readable label for an MNA unknown index: `node 'out'` for a
    /// voltage unknown, `branch current of 'V1'` for a branch unknown.
    /// Failure reports use this to turn a singular pivot's column index into
    /// something a circuit author can act on. Returns `None` for indices
    /// outside the MNA system.
    pub fn unknown_label(&self, index: usize) -> Option<String> {
        let num_nodes = self.num_nodes();
        if index < num_nodes {
            // Voltage unknown `index` belongs to NodeId(index + 1).
            return Some(format!(
                "node '{}'",
                self.nodes.name(crate::node::NodeId(index + 1))
            ));
        }
        let branch = index.checked_sub(num_nodes)?;
        if branch >= self.num_branches {
            return None;
        }
        self.devices.iter().find_map(|d| match d {
            Device::Inductor {
                name, branch: b, ..
            }
            | Device::VoltageSource {
                name, branch: b, ..
            } if *b == branch => Some(format!("branch current of '{name}'")),
            _ => None,
        })
    }

    /// Number of branch-current unknowns (voltage sources and inductors).
    pub fn num_branches(&self) -> usize {
        self.num_branches
    }

    /// Total number of MNA unknowns.
    pub fn num_unknowns(&self) -> usize {
        self.num_nodes() + self.num_branches
    }

    /// Number of independent sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of nonlinear devices (diodes and MOSFETs).
    pub fn num_nonlinear_devices(&self) -> usize {
        self.devices.iter().filter(|d| d.is_nonlinear()).count()
    }

    /// The devices of the circuit.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The independent sources as `(name, waveform)` pairs.
    pub fn sources(&self) -> &[(String, Waveform)] {
        &self.sources
    }

    /// Sets the minimum junction conductance (SPICE `GMIN`).
    pub fn set_gmin(&mut self, gmin: f64) {
        self.gmin = gmin;
    }

    /// The minimum junction conductance.
    pub fn gmin(&self) -> f64 {
        self.gmin
    }

    fn register_name(&mut self, name: &str) -> NetlistResult<()> {
        if !self.device_names.insert(name.to_string()) {
            return Err(NetlistError::DuplicateDevice {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    fn check_positive(name: &str, parameter: &'static str, value: f64) -> NetlistResult<()> {
        // NaN fails the finiteness check, so this rejects it like `!(v > 0)` did.
        if value <= 0.0 || !value.is_finite() {
            return Err(NetlistError::InvalidParameter {
                device: name.to_string(),
                parameter,
                value,
            });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive resistance and duplicate names.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> NetlistResult<()> {
        Self::check_positive(name, "resistance", ohms)?;
        self.register_name(name)?;
        self.devices.push(Device::Resistor {
            name: name.to_string(),
            a,
            b,
            resistance: ohms,
        });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitance and duplicate names.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> NetlistResult<()> {
        Self::check_positive(name, "capacitance", farads)?;
        self.register_name(name)?;
        self.devices.push(Device::Capacitor {
            name: name.to_string(),
            a,
            b,
            capacitance: farads,
        });
        Ok(())
    }

    /// Adds an inductor (introduces a branch-current unknown).
    ///
    /// # Errors
    ///
    /// Rejects non-positive inductance and duplicate names.
    pub fn add_inductor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
    ) -> NetlistResult<()> {
        Self::check_positive(name, "inductance", henries)?;
        self.register_name(name)?;
        let branch = self.num_branches;
        self.num_branches += 1;
        self.devices.push(Device::Inductor {
            name: name.to_string(),
            a,
            b,
            inductance: henries,
            branch,
        });
        Ok(())
    }

    /// Adds an independent voltage source between `pos` and `neg`
    /// (introduces a branch-current unknown).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_voltage_source(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: Waveform,
    ) -> NetlistResult<()> {
        self.register_name(name)?;
        let branch = self.num_branches;
        self.num_branches += 1;
        let source = self.sources.len();
        self.sources.push((name.to_string(), waveform));
        self.devices.push(Device::VoltageSource {
            name: name.to_string(),
            pos,
            neg,
            branch,
            source,
        });
        Ok(())
    }

    /// Adds an independent current source pushing its current from `from`
    /// into `to`.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_current_source(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        waveform: Waveform,
    ) -> NetlistResult<()> {
        self.register_name(name)?;
        let source = self.sources.len();
        self.sources.push((name.to_string(), waveform));
        self.devices.push(Device::CurrentSource {
            name: name.to_string(),
            from,
            to,
            source,
        });
        Ok(())
    }

    /// Adds a junction diode.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_diode(
        &mut self,
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        model: DiodeModel,
    ) -> NetlistResult<()> {
        self.register_name(name)?;
        self.devices.push(Device::Diode {
            name: name.to_string(),
            anode,
            cathode,
            model,
        });
        Ok(())
    }

    /// Adds a MOSFET (drain, gate, source; bulk tied to source).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        model: MosfetModel,
    ) -> NetlistResult<()> {
        self.register_name(name)?;
        self.devices.push(Device::Mosfet {
            name: name.to_string(),
            drain,
            gate,
            source,
            model,
        });
        Ok(())
    }

    /// Compiles a precompiled evaluation plan for this topology — the
    /// allocation-free restamping entry point of the hot loop (see
    /// [`crate::plan`] for the full story).
    ///
    /// The plan snapshots the devices and `gmin`: recompile after any
    /// mutation of the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::EmptyCircuit`] for a circuit with no unknowns.
    pub fn compile_plan(&self) -> NetlistResult<crate::plan::EvalPlan> {
        crate::plan::EvalPlan::compile(self)
    }

    /// Evaluates all devices at state `x`, producing the matrices and vectors
    /// of the linearized MNA system.
    ///
    /// This compiles a throwaway [`crate::plan::EvalPlan`] per call; hot
    /// loops must compile once and restamp with
    /// [`EvalPlan::evaluate_into`](crate::plan::EvalPlan::evaluate_into)
    /// instead (bit-identical results).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::EmptyCircuit`] for a circuit with no unknowns
    /// and an error if `x` has the wrong length.
    #[deprecated(
        since = "0.4.0",
        note = "compile an `EvalPlan` once per topology (`Circuit::compile_plan`) and restamp \
                with `EvalPlan::evaluate_into` — the plan path assembles without COO buffers, \
                sorting or steady-state allocation"
    )]
    pub fn evaluate(&self, x: &[f64]) -> NetlistResult<Evaluation> {
        self.compile_plan()?.evaluate(x)
    }

    /// The legacy COO-assembly evaluation path, retained verbatim as the
    /// differential-testing and benchmarking reference for the plan path
    /// ([`Circuit::compile_plan`]). `tests/proptest_plan.rs` asserts the two
    /// are bit-identical on randomized circuits; the `assembly` bench group
    /// measures the gap.
    #[doc(hidden)]
    pub fn evaluate_reference(&self, x: &[f64]) -> NetlistResult<Evaluation> {
        let n = self.num_unknowns();
        if n == 0 {
            return Err(NetlistError::EmptyCircuit);
        }
        if x.len() != n {
            return Err(NetlistError::Parse {
                line: 0,
                message: format!(
                    "state vector length {} does not match {} unknowns",
                    x.len(),
                    n
                ),
            });
        }
        let mut g = TripletMatrix::with_capacity(n, n, 8 * self.devices.len());
        let mut c = TripletMatrix::with_capacity(n, n, 4 * self.devices.len());
        let mut f = vec![0.0; n];
        let mut q = vec![0.0; n];
        {
            let mut ctx = StampContext {
                x,
                g: &mut g,
                c: &mut c,
                f: &mut f,
                q: &mut q,
                b: None,
                gmin: self.gmin,
                branch_offset: self.num_nodes(),
            };
            for device in &self.devices {
                device.stamp(&mut ctx);
            }
        }
        Ok(Evaluation {
            c: c.to_csr(),
            g: g.to_csr(),
            f,
            q,
        })
    }

    /// The constant source-incidence matrix `B` (`num_unknowns × num_sources`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::EmptyCircuit`] for a circuit with no unknowns.
    #[deprecated(
        since = "0.4.0",
        note = "compile an `EvalPlan` once per topology (`Circuit::compile_plan`) and borrow \
                `EvalPlan::input_matrix` — `B` is a pure function of the topology"
    )]
    pub fn input_matrix(&self) -> NetlistResult<CsrMatrix> {
        Ok(self.compile_plan()?.input_matrix().clone())
    }

    /// The legacy stamping-pass construction of `B`, retained as the
    /// differential-testing reference for the plan path.
    #[doc(hidden)]
    pub fn input_matrix_reference(&self) -> NetlistResult<CsrMatrix> {
        let n = self.num_unknowns();
        if n == 0 {
            return Err(NetlistError::EmptyCircuit);
        }
        let x = vec![0.0; n];
        let mut g = TripletMatrix::new(n, n);
        let mut c = TripletMatrix::new(n, n);
        let mut f = vec![0.0; n];
        let mut q = vec![0.0; n];
        let mut b = TripletMatrix::new(n, self.sources.len().max(1));
        {
            let mut ctx = StampContext {
                x: &x,
                g: &mut g,
                c: &mut c,
                f: &mut f,
                q: &mut q,
                b: Some(&mut b),
                gmin: self.gmin,
                branch_offset: self.num_nodes(),
            };
            for device in &self.devices {
                device.stamp(&mut ctx);
            }
        }
        Ok(b.to_csr())
    }

    /// Number of entries of the input vector `u(t)` — the column count of
    /// the incidence matrix `B` (`num_sources`, or 1 for a source-free
    /// circuit so the matrix stays well-formed).
    pub fn input_dim(&self) -> usize {
        self.sources.len().max(1)
    }

    /// Evaluates all independent sources at time `t`.
    pub fn input_vector(&self, t: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.input_dim()];
        self.input_vector_into(t, &mut out);
        out
    }

    /// Evaluates all independent sources at time `t` into a caller buffer of
    /// [`Circuit::input_dim`] entries — the allocation-free form the
    /// transient engines call per step. For a source-free circuit the single
    /// padding entry is set to `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.input_dim()`.
    pub fn input_vector_into(&self, t: f64, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.input_dim(),
            "input_vector_into: buffer dimension mismatch"
        );
        if self.sources.is_empty() {
            out[0] = 0.0;
            return;
        }
        for (o, (_, w)) in out.iter_mut().zip(self.sources.iter()) {
            *o = w.value(t);
        }
    }

    /// All waveform breakpoints in `[0, t_end]`, sorted and deduplicated.
    pub fn breakpoints(&self, t_end: f64) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .sources
            .iter()
            .flat_map(|(_, w)| w.breakpoints(t_end))
            .filter(|t| t.is_finite())
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        out.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plan-path evaluation shorthand for the stamp tests.
    fn eval(ckt: &Circuit, x: &[f64]) -> Evaluation {
        ckt.compile_plan().unwrap().evaluate(x).unwrap()
    }

    fn input_matrix(ckt: &Circuit) -> CsrMatrix {
        ckt.compile_plan().unwrap().input_matrix().clone()
    }

    fn rc_divider() -> Circuit {
        // V1 -- R1 -- out -- C1 -- gnd
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", vin, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", vin, out, 1000.0).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-12).unwrap();
        ckt
    }

    #[test]
    fn counts_and_lookups() {
        let ckt = rc_divider();
        assert_eq!(ckt.num_nodes(), 2);
        assert_eq!(ckt.num_branches(), 1);
        assert_eq!(ckt.num_unknowns(), 3);
        assert_eq!(ckt.num_sources(), 1);
        assert_eq!(ckt.num_devices(), 3);
        assert_eq!(ckt.num_nonlinear_devices(), 0);
        assert_eq!(ckt.unknown_of("in"), Some(0));
        assert_eq!(ckt.unknown_of("out"), Some(1));
        assert_eq!(ckt.unknown_of("0"), None);
        assert!(ckt.find_node("nonexistent").is_none());
    }

    #[test]
    fn resistor_and_capacitor_stamps() {
        let ckt = rc_divider();
        let x = vec![1.0, 0.25, -0.75e-3]; // in, out, branch current
        let ev = eval(&ckt, &x);
        // G row for "out": conductance 1e-3 to "in" and itself.
        assert!((ev.g.get(1, 1) - 1e-3).abs() < 1e-15);
        assert!((ev.g.get(1, 0) + 1e-3).abs() < 1e-15);
        // C only on the "out" node.
        assert!((ev.c.get(1, 1) - 1e-12).abs() < 1e-24);
        assert_eq!(ev.c.get(0, 0), 0.0);
        // f at node "out": current through R1 leaving out = (v_out - v_in)/R.
        assert!((ev.f[1] - (0.25 - 1.0) / 1000.0).abs() < 1e-15);
        // Voltage source branch equation: v_in - 0 = u -> f[2] = v_in.
        assert!((ev.f[2] - 1.0).abs() < 1e-15);
        // q on node "out" is C*v_out.
        assert!((ev.q[1] - 1e-12 * 0.25).abs() < 1e-27);
    }

    #[test]
    fn input_matrix_and_vector() {
        let ckt = rc_divider();
        let b = input_matrix(&ckt);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 1);
        assert_eq!(b.get(2, 0), 1.0);
        assert_eq!(ckt.input_vector(0.0), vec![1.0]);
    }

    #[test]
    fn current_source_signs() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_resistor("R1", a, gnd, 100.0).unwrap();
        ckt.add_current_source("I1", gnd, a, Waveform::Dc(0.01))
            .unwrap();
        let b = input_matrix(&ckt);
        // Current is injected into node a.
        assert_eq!(b.get(0, 0), 1.0);
        // Steady state: v_a = I*R = 1 V, so f(x) - B u = 0 at v_a = 1.
        let ev = eval(&ckt, &[1.0]);
        let bu = b.mul_vec(&ckt.input_vector(0.0));
        assert!((ev.f[0] - bu[0]).abs() < 1e-15);
    }

    #[test]
    fn inductor_contributes_branch_equation() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_inductor("L1", a, gnd, 1e-9).unwrap();
        ckt.add_resistor("R1", a, gnd, 50.0).unwrap();
        let x = vec![2.0, 0.04];
        let ev = eval(&ckt, &x);
        // Branch flux q = L*i.
        assert!((ev.q[1] - 1e-9 * 0.04).abs() < 1e-20);
        // Branch equation residual f = -(v_a - 0).
        assert!((ev.f[1] + 2.0).abs() < 1e-15);
        // KCL at node a includes the branch current.
        assert!((ev.f[0] - (0.04 + 2.0 / 50.0)).abs() < 1e-15);
        assert_eq!(ev.c.get(1, 1), 1e-9);
    }

    #[test]
    fn nonlinear_devices_are_counted_and_stamped() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let g = ckt.node("g");
        let gnd = ckt.node("0");
        ckt.add_diode("D1", a, gnd, DiodeModel::default()).unwrap();
        ckt.add_mosfet("M1", a, g, gnd, MosfetModel::nmos())
            .unwrap();
        assert_eq!(ckt.num_nonlinear_devices(), 2);
        let ev = eval(&ckt, &[0.6, 1.0]);
        // Diode forward current appears at node a.
        assert!(ev.f[0] > 0.0);
        // MOSFET is on (vgs = 1.0 > vt), adding conductance at node a.
        assert!(ev.g.get(0, 0) > 0.0);
        // Gate capacitance couples gate and source/drain.
        assert!(ev.c.get(1, 1) > 0.0);
    }

    #[test]
    #[allow(deprecated)] // pins the deprecated wrappers' error parity
    fn validation_errors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        assert!(matches!(
            ckt.add_resistor("R1", a, gnd, -5.0),
            Err(NetlistError::InvalidParameter { .. })
        ));
        ckt.add_resistor("R1", a, gnd, 5.0).unwrap();
        assert!(matches!(
            ckt.add_capacitor("R1", a, gnd, 1e-12),
            Err(NetlistError::DuplicateDevice { .. })
        ));
        assert!(matches!(
            ckt.evaluate(&[1.0, 2.0]),
            Err(NetlistError::Parse { .. })
        ));
        let empty = Circuit::new();
        assert!(matches!(
            empty.evaluate(&[]),
            Err(NetlistError::EmptyCircuit)
        ));
        assert!(matches!(
            empty.input_matrix(),
            Err(NetlistError::EmptyCircuit)
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_plan_path_bitwise() {
        let ckt = rc_divider();
        let x = vec![0.9, 0.4, -5e-4];
        let wrapped = ckt.evaluate(&x).unwrap();
        let planned = eval(&ckt, &x);
        assert_eq!(wrapped.g, planned.g);
        assert_eq!(wrapped.c, planned.c);
        assert_eq!(wrapped.f, planned.f);
        assert_eq!(wrapped.q, planned.q);
        assert_eq!(ckt.input_matrix().unwrap(), input_matrix(&ckt));
        // And the plan path agrees with the retained COO reference.
        let reference = ckt.evaluate_reference(&x).unwrap();
        assert_eq!(reference.g, planned.g);
        assert_eq!(reference.f, planned.f);
    }

    #[test]
    fn input_vector_into_matches_the_allocating_form() {
        let ckt = rc_divider();
        let mut buf = vec![42.0; ckt.input_dim()];
        ckt.input_vector_into(0.0, &mut buf);
        assert_eq!(buf, ckt.input_vector(0.0));
        // Source-free circuit: single zero padding entry.
        let mut lone = Circuit::new();
        let a = lone.node("a");
        let gnd = lone.node("0");
        lone.add_resistor("R", a, gnd, 1.0).unwrap();
        assert_eq!(lone.input_dim(), 1);
        let mut pad = vec![7.0];
        lone.input_vector_into(1.0, &mut pad);
        assert_eq!(pad, vec![0.0]);
    }

    #[test]
    fn breakpoints_are_merged() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "V1",
            a,
            gnd,
            Waveform::single_pulse(0.0, 1.0, 1e-9, 1e-10, 1e-10, 1e-9),
        )
        .unwrap();
        ckt.add_current_source("I1", gnd, a, Waveform::Pwl(vec![(0.0, 0.0), (2e-9, 1e-3)]))
            .unwrap();
        let bp = ckt.breakpoints(1e-8);
        assert!(bp.len() >= 5);
        assert!(bp.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn gmin_is_configurable() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_diode("D1", a, gnd, DiodeModel::default()).unwrap();
        ckt.set_gmin(1e-9);
        assert_eq!(ckt.gmin(), 1e-9);
        let ev = eval(&ckt, &[-1.0]);
        // Reverse-biased diode: conductance is dominated by gmin.
        assert!(ev.g.get(0, 0) >= 1e-9);
    }
}
