//! Low-level SPICE-line parsing: values, element cards and source
//! specifications.
//!
//! This module owns the token-level pieces of the deck front-end (see
//! [`crate::deck`] for the full deck grammar — subcircuits, parameters,
//! includes and analysis cards). The supported element subset:
//!
//! ```text
//! R<name> <n+> <n-> <value>
//! C<name> <n+> <n-> <value>
//! L<name> <n+> <n-> <value>
//! V<name> <n+> <n-> DC <value> | PULSE(v1 v2 td tr tf pw [per]) | PWL(t1 v1 t2 v2 ...) | SIN(off ampl freq [td [damp]])
//! I<name> <n+> <n-> <same source syntax as V>
//! D<name> <anode> <cathode> [IS=<v>] [N=<v>] [VT=<v>] [CJ=<v>]
//! M<name> <drain> <gate> <source> <nmos|pmos> [W=<v>] [L=<v>] [VT=<v>] [KP=<v>] [LAMBDA=<v>] [CGS=<v>] [CGD=<v>]
//! ```
//!
//! Values accept SPICE magnitude suffixes (`f p n u m k meg g t`).

use std::collections::HashMap;

use crate::circuit::Circuit;
use crate::deck::parse_deck;
use crate::devices::{DiodeModel, MosfetModel};
use crate::error::{NetlistError, NetlistResult};
use crate::node::is_ground_name;
use crate::waveform::Waveform;

/// Parses a netlist string into a [`Circuit`], ignoring analysis cards.
///
/// This is the historical entry point, kept as a thin wrapper over the full
/// deck front-end: it accepts everything [`crate::deck::parse_deck`] accepts
/// (including `.subckt`/`.ends` definitions with `X` instantiation and
/// `.param` substitution) and returns only the flattened circuit, discarding
/// `.tran`/`.op`/`.print` cards. Use [`crate::deck::parse_deck`] when the
/// analysis cards matter (the `exi-cli` front-end does).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a line number for any malformed line,
/// and propagates device-construction errors (duplicates, invalid values).
///
/// # Examples
///
/// ```
/// use exi_netlist::parse_netlist;
///
/// # fn main() -> Result<(), exi_netlist::NetlistError> {
/// let ckt = parse_netlist(
///     "* rc low-pass\n\
///      Vin in 0 PULSE(0 1 0 1n 1n 5n 20n)\n\
///      R1 in out 1k\n\
///      C1 out 0 1p\n\
///      .end\n",
/// )?;
/// assert_eq!(ckt.num_unknowns(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_netlist(text: &str) -> NetlistResult<Circuit> {
    Ok(parse_deck(text)?.circuit)
}

/// Name-resolution scope for element lines expanded from a subcircuit body.
///
/// `path` is the dotted instance path (`X1`, `X1.X2`, …); `ports` maps a
/// port name as declared on the `.subckt` card to the fully resolved outer
/// node it is connected to. Nodes that are neither ports nor ground become
/// `path.node`, and device names become `path.name`, so two instances of one
/// subcircuit never collide.
#[derive(Debug)]
pub(crate) struct ElementScope {
    pub(crate) path: String,
    pub(crate) ports: HashMap<String, String>,
}

impl ElementScope {
    /// Resolves a node token from a subcircuit body to its flat name.
    pub(crate) fn resolve_node(&self, token: &str) -> String {
        if is_ground_name(token) {
            return token.to_string();
        }
        if let Some(outer) = self.ports.get(token) {
            return outer.clone();
        }
        format!("{}.{}", self.path, token)
    }

    /// Resolves a device name from a subcircuit body to its flat name.
    pub(crate) fn resolve_device(&self, name: &str) -> String {
        format!("{}.{}", self.path, name)
    }
}

fn scoped_node(circuit: &mut Circuit, token: &str, scope: Option<&ElementScope>) -> crate::NodeId {
    match scope {
        Some(s) => {
            let resolved = s.resolve_node(token);
            circuit.node(&resolved)
        }
        None => circuit.node(token),
    }
}

/// Parses one element line (already tokenized) into `circuit`.
///
/// `scope` is `None` for top-level lines; subcircuit expansion passes the
/// instance scope so nodes and device names are flattened hierarchically.
pub(crate) fn parse_element(
    circuit: &mut Circuit,
    tokens: &[String],
    line_no: usize,
    scope: Option<&ElementScope>,
) -> NetlistResult<()> {
    if tokens.is_empty() {
        return Ok(());
    }
    let raw_name = tokens[0].as_str();
    let kind = raw_name.chars().next().unwrap_or(' ').to_ascii_uppercase();
    let name = match scope {
        Some(s) => s.resolve_device(raw_name),
        None => raw_name.to_string(),
    };
    let name = name.as_str();
    let err = |message: String| NetlistError::Parse {
        line: line_no,
        message,
    };
    match kind {
        'R' | 'C' | 'L' => {
            if tokens.len() != 4 {
                return Err(err(format!("{raw_name}: expected <n+> <n-> <value>")));
            }
            let a = scoped_node(circuit, &tokens[1], scope);
            let b = scoped_node(circuit, &tokens[2], scope);
            let value = parse_value(&tokens[3])
                .ok_or_else(|| err(format!("{raw_name}: bad value '{}'", tokens[3])))?;
            match kind {
                'R' => circuit.add_resistor(name, a, b, value)?,
                'C' => circuit.add_capacitor(name, a, b, value)?,
                _ => circuit.add_inductor(name, a, b, value)?,
            }
            Ok(())
        }
        'V' | 'I' => {
            if tokens.len() < 4 {
                return Err(err(format!("{raw_name}: expected <n+> <n-> <source>")));
            }
            let a = scoped_node(circuit, &tokens[1], scope);
            let b = scoped_node(circuit, &tokens[2], scope);
            let wave = parse_source(&tokens[3..])
                .ok_or_else(|| err(format!("{raw_name}: bad source specification")))?;
            if kind == 'V' {
                circuit.add_voltage_source(name, a, b, wave)?;
            } else {
                // SPICE convention: positive current flows from n+ through the
                // source into n-.
                circuit.add_current_source(name, a, b, wave)?;
            }
            Ok(())
        }
        'D' => {
            if tokens.len() < 3 {
                return Err(err(format!("{raw_name}: expected <anode> <cathode>")));
            }
            let a = scoped_node(circuit, &tokens[1], scope);
            let c = scoped_node(circuit, &tokens[2], scope);
            let mut model = DiodeModel::default();
            for t in &tokens[3..] {
                let (key, val) = parse_assignment(t)
                    .ok_or_else(|| err(format!("{raw_name}: expected key=value, got '{t}'")))?;
                match key.as_str() {
                    "is" => model.saturation_current = val,
                    "n" => model.emission_coefficient = val,
                    "vt" => model.thermal_voltage = val,
                    "cj" => model.junction_capacitance = val,
                    _ => return Err(err(format!("{raw_name}: unknown diode parameter '{key}'"))),
                }
            }
            circuit.add_diode(name, a, c, model)?;
            Ok(())
        }
        'M' => {
            if tokens.len() < 5 {
                return Err(err(format!("{raw_name}: expected <d> <g> <s> <nmos|pmos>")));
            }
            let d = scoped_node(circuit, &tokens[1], scope);
            let g = scoped_node(circuit, &tokens[2], scope);
            let s = scoped_node(circuit, &tokens[3], scope);
            let mut model = match tokens[4].to_ascii_lowercase().as_str() {
                "nmos" => MosfetModel::nmos(),
                "pmos" => MosfetModel::pmos(),
                other => return Err(err(format!("{raw_name}: unknown mosfet type '{other}'"))),
            };
            for t in &tokens[5..] {
                let (key, val) = parse_assignment(t)
                    .ok_or_else(|| err(format!("{raw_name}: expected key=value, got '{t}'")))?;
                match key.as_str() {
                    "w" => model.width = val,
                    "l" => model.length = val,
                    "vt" => model.threshold = val,
                    "kp" => model.transconductance = val,
                    "lambda" => model.lambda = val,
                    "cgs" => model.cgs = val,
                    "cgd" => model.cgd = val,
                    _ => return Err(err(format!("{raw_name}: unknown mosfet parameter '{key}'"))),
                }
            }
            circuit.add_mosfet(name, d, g, s, model)?;
            Ok(())
        }
        _ => Err(err(format!("unsupported element '{raw_name}'"))),
    }
}

/// Splits a line into tokens, keeping `FUNC(a b c)` groups together.
pub(crate) fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut depth = 0usize;
    for ch in line.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Splits a `key=value` token, lower-casing the key and parsing the value.
pub(crate) fn parse_assignment(token: &str) -> Option<(String, f64)> {
    let (key, value) = token.split_once('=')?;
    Some((key.trim().to_ascii_lowercase(), parse_value(value.trim())?))
}

/// Parses a SPICE value with an optional magnitude suffix.
pub fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Find the numeric prefix.
    let mut split = t.len();
    for (i, ch) in t.char_indices() {
        if !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == '+' || ch == 'e') {
            split = i;
            break;
        }
        // 'e' is only part of the number if followed by a digit or sign.
        if ch == 'e' {
            let rest = &t[i + 1..];
            if !rest.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '+') {
                split = i;
                break;
            }
        }
    }
    let (num, suffix) = t.split_at(split);
    let base: f64 = num.parse().ok()?;
    let mult = match suffix {
        "" => 1.0,
        s if s.starts_with("meg") => 1e6,
        s if s.starts_with('f') => 1e-15,
        s if s.starts_with('p') => 1e-12,
        s if s.starts_with('n') => 1e-9,
        s if s.starts_with('u') => 1e-6,
        s if s.starts_with('m') => 1e-3,
        s if s.starts_with('k') => 1e3,
        s if s.starts_with('g') => 1e9,
        s if s.starts_with('t') => 1e12,
        _ => return None,
    };
    Some(base * mult)
}

/// Parses the source-specification tokens of a `V`/`I` element.
fn parse_source(tokens: &[String]) -> Option<Waveform> {
    if tokens.is_empty() {
        return None;
    }
    let first = tokens[0].to_ascii_lowercase();
    if first == "dc" {
        return Some(Waveform::Dc(parse_value(tokens.get(1)?)?));
    }
    if let Some(args) = function_args(&tokens[0], "pulse") {
        let v: Vec<f64> = args.iter().filter_map(|a| parse_value(a)).collect();
        if v.len() < 6 {
            return None;
        }
        // A 6-argument PULSE omits the period: a single, non-repeating pulse.
        return Some(Waveform::Pulse {
            v1: v[0],
            v2: v[1],
            delay: v[2],
            rise: v[3],
            fall: v[4],
            width: v[5],
            period: v.get(6).copied().unwrap_or(f64::INFINITY),
        });
    }
    if let Some(args) = function_args(&tokens[0], "pwl") {
        let v: Vec<f64> = args.iter().filter_map(|a| parse_value(a)).collect();
        if v.len() < 2 || !v.len().is_multiple_of(2) {
            return None;
        }
        let points = v.chunks(2).map(|c| (c[0], c[1])).collect();
        return Some(Waveform::Pwl(points));
    }
    if let Some(args) = function_args(&tokens[0], "sin") {
        let v: Vec<f64> = args.iter().filter_map(|a| parse_value(a)).collect();
        if v.len() < 3 {
            return None;
        }
        return Some(Waveform::Sine {
            offset: v[0],
            amplitude: v[1],
            frequency: v[2],
            delay: v.get(3).copied().unwrap_or(0.0),
            damping: v.get(4).copied().unwrap_or(0.0),
        });
    }
    // Bare value: treat as DC.
    Some(Waveform::Dc(parse_value(&tokens[0])?))
}

/// If `token` has the form `name(a b c)`, returns the argument list.
fn function_args(token: &str, name: &str) -> Option<Vec<String>> {
    let lower = token.to_ascii_lowercase();
    let rest = lower.strip_prefix(name)?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.split_whitespace().map(|s| s.to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_with_suffixes() {
        assert_eq!(parse_value("1k"), Some(1e3));
        assert_eq!(parse_value("2.5meg"), Some(2.5e6));
        assert_eq!(parse_value("10p"), Some(1e-11));
        assert!((parse_value("3n").unwrap() - 3e-9).abs() < 1e-20);
        assert_eq!(parse_value("1.5u"), Some(1.5e-6));
        assert_eq!(parse_value("100m"), Some(0.1));
        assert_eq!(parse_value("2e-3"), Some(2e-3));
        assert_eq!(parse_value("1e3k"), Some(1e6));
        assert_eq!(parse_value("1f"), Some(1e-15));
        assert_eq!(parse_value(""), None);
        assert_eq!(parse_value("abc"), None);
    }

    #[test]
    fn full_precision_values_round_trip() {
        // The deck writer emits `{:.17e}`; the parser must read every bit
        // back (the deck round-trip fixtures depend on it).
        for v in [
            1.0,
            -3.123456789012345e-7,
            5e-10,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
        ] {
            let text = format!("{v:.17e}");
            let back = parse_value(&text).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn parses_rc_with_pulse_source() {
        let ckt = parse_netlist(
            "* test\nVin in 0 PULSE(0 1 0 1n 1n 5n 20n)\nR1 in out 1k\nC1 out 0 1p\n.end\n",
        )
        .unwrap();
        assert_eq!(ckt.num_devices(), 3);
        assert_eq!(ckt.num_unknowns(), 3);
        assert_eq!(ckt.num_sources(), 1);
        assert!((ckt.input_vector(3e-9)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn six_argument_pulse_is_a_single_pulse() {
        let ckt = parse_netlist("V1 a 0 PULSE(0 1 0 1n 1n 5n)\nR1 a 0 1k\n").unwrap();
        match &ckt.sources()[0].1 {
            Waveform::Pulse { period, .. } => assert!(period.is_infinite()),
            other => panic!("unexpected waveform {other:?}"),
        }
        // Five arguments are still rejected.
        assert!(parse_netlist("V1 a 0 PULSE(0 1 0 1n 1n)\nR1 a 0 1k\n").is_err());
    }

    #[test]
    fn parses_dc_pwl_and_sin_sources() {
        let ckt = parse_netlist(
            "V1 a 0 DC 1.8\nI1 a 0 PWL(0 0 1n 1m)\nV2 b 0 SIN(0 1 1meg)\nR1 a b 1k\n",
        )
        .unwrap();
        assert_eq!(ckt.num_sources(), 3);
        let u = ckt.input_vector(0.5e-9);
        assert!((u[0] - 1.8).abs() < 1e-12);
        assert!((u[1] - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn parses_nonlinear_devices_with_parameters() {
        let ckt = parse_netlist(
            "Vdd vdd 0 DC 1.0\nM1 out in 0 nmos W=2u L=0.1u\nM2 out in vdd pmos\nD1 out 0 IS=1e-15 CJ=2f\nC1 out 0 10f\n",
        )
        .unwrap();
        assert_eq!(ckt.num_nonlinear_devices(), 3);
    }

    #[test]
    fn diode_thermal_voltage_is_settable() {
        let ckt = parse_netlist("D1 a 0 VT=0.03\nR1 a 0 1k\n").unwrap();
        match &ckt.devices()[0] {
            crate::Device::Diode { model, .. } => assert_eq!(model.thermal_voltage, 0.03),
            other => panic!("unexpected device {other:?}"),
        }
    }

    #[test]
    fn bare_value_source_is_dc() {
        let ckt = parse_netlist("V1 a 0 2.5\nR1 a 0 1k\n").unwrap();
        assert_eq!(ckt.input_vector(0.0), vec![2.5]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_netlist("R1 a 0 1k\nQ1 foo bar baz\n").unwrap_err();
        match e {
            NetlistError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_netlist("R1 a 0\n").is_err());
        assert!(parse_netlist("V1 a 0 PULSE(0 1)\n").is_err());
        assert!(parse_netlist("M1 a b c weird\n").is_err());
        assert!(parse_netlist("D1 a 0 XX=3\n").is_err());
    }

    #[test]
    fn stray_non_assignment_device_parameters_are_rejected() {
        // Previously silently ignored; now a parse error with the offending
        // token in the message.
        let e = parse_netlist("D1 a 0 garbage\nR1 a 0 1k\n").unwrap_err();
        assert!(e.to_string().contains("garbage"), "{e}");
        let e = parse_netlist("M1 a b 0 nmos stray\n").unwrap_err();
        assert!(e.to_string().contains("stray"), "{e}");
        // Extra tokens on an R/C/L line are rejected too.
        assert!(parse_netlist("R1 a 0 1k extra\n").is_err());
    }

    #[test]
    fn comments_and_directives_are_skipped() {
        let ckt =
            parse_netlist("* title\n.title foo\n// slash comment\nR1 a 0 1\n.tran 1n 10n\n.end\n")
                .unwrap();
        assert_eq!(ckt.num_devices(), 1);
    }
}
