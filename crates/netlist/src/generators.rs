//! Synthetic workload generators.
//!
//! The paper evaluates on proprietary post-layout netlists (FreeCPU SPEF
//! extractions, ckt1–ckt8). These generators build parameterised circuits with
//! the same *structural* properties the paper's argument depends on —
//! nonlinear driver count, capacitive coupling density, stiffness — at sizes
//! that run on a laptop. See DESIGN.md §3 for the substitution rationale.
//!
//! Naming conventions (usable with [`Circuit::unknown_of`]):
//!
//! * `inverter_chain`: input `in`, stage outputs `s1 … sN`, supply `vdd`.
//! * `rc_ladder`: input `in`, taps `n1 … nN`.
//! * `power_grid`: pads `vdd`, grid nodes `g_<row>_<col>`.
//! * `rc_mesh`: driver `in`, mesh nodes `m_<row>_<col>`.
//! * `coupled_lines`: line nodes `l<line>_<segment>`, driver inputs `in<line>`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;
use crate::devices::MosfetModel;
use crate::error::NetlistResult;
use crate::waveform::Waveform;

/// Parameters for [`rc_ladder`].
#[derive(Debug, Clone, PartialEq)]
pub struct RcLadderSpec {
    /// Number of RC segments.
    pub segments: usize,
    /// Series resistance per segment in ohms.
    pub resistance: f64,
    /// Shunt capacitance per segment in farads.
    pub capacitance: f64,
    /// Input waveform driven through an ideal voltage source.
    pub input: Waveform,
}

impl Default for RcLadderSpec {
    fn default() -> Self {
        RcLadderSpec {
            segments: 10,
            resistance: 100.0,
            capacitance: 1e-13,
            input: Waveform::single_pulse(0.0, 1.0, 0.0, 1e-11, 1e-11, 1e-8),
        }
    }
}

/// Builds a uniform RC transmission-line ladder driven by a voltage source.
///
/// # Errors
///
/// Propagates device-construction errors (they indicate invalid spec values),
/// wrapped with the generator's name ([`crate::NetlistError::Spec`]) so batch
/// failure reports identify the offending sweep member.
pub fn rc_ladder(spec: &RcLadderSpec) -> NetlistResult<Circuit> {
    build_rc_ladder(spec).map_err(|e| e.in_spec("rc_ladder"))
}

fn build_rc_ladder(spec: &RcLadderSpec) -> NetlistResult<Circuit> {
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let vin = ckt.node("in");
    ckt.add_voltage_source("Vin", vin, gnd, spec.input.clone())?;
    let mut prev = vin;
    for i in 1..=spec.segments {
        let node = ckt.node(&format!("n{i}"));
        ckt.add_resistor(&format!("R{i}"), prev, node, spec.resistance)?;
        ckt.add_capacitor(&format!("C{i}"), node, gnd, spec.capacitance)?;
        prev = node;
    }
    Ok(ckt)
}

/// Parameters for [`inverter_chain`].
#[derive(Debug, Clone, PartialEq)]
pub struct InverterChainSpec {
    /// Number of inverter stages.
    pub stages: usize,
    /// Supply voltage.
    pub vdd: f64,
    /// Load capacitance at every stage output in farads.
    pub load_capacitance: f64,
    /// Wire resistance between consecutive stages in ohms.
    pub wire_resistance: f64,
    /// Wire (parasitic) capacitance between consecutive stages in farads.
    pub wire_capacitance: f64,
    /// Fan-out factor: width multiplier applied cumulatively along the chain.
    pub fanout: f64,
    /// Input waveform.
    pub input: Waveform,
}

impl Default for InverterChainSpec {
    fn default() -> Self {
        InverterChainSpec {
            stages: 8,
            vdd: 1.0,
            load_capacitance: 2e-15,
            wire_resistance: 50.0,
            wire_capacitance: 1e-15,
            fanout: 1.0,
            input: Waveform::single_pulse(0.0, 1.0, 1e-10, 2e-11, 2e-11, 2e-9),
        }
    }
}

/// Builds a CMOS inverter chain — the stiff nonlinear demonstration circuit
/// used for the paper's Fig. 2 accuracy comparison.
///
/// Each stage is a PMOS/NMOS pair; stages are connected through a short RC
/// wire and loaded with a capacitor, so the circuit mixes fast device
/// nonlinearities with slower interconnect time constants (stiffness).
///
/// # Errors
///
/// Propagates device-construction errors, wrapped with the generator's name
/// ([`crate::NetlistError::Spec`]).
pub fn inverter_chain(spec: &InverterChainSpec) -> NetlistResult<Circuit> {
    build_inverter_chain(spec).map_err(|e| e.in_spec("inverter_chain"))
}

fn build_inverter_chain(spec: &InverterChainSpec) -> NetlistResult<Circuit> {
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    ckt.add_voltage_source("Vdd", vdd, gnd, Waveform::Dc(spec.vdd))?;
    ckt.add_voltage_source("Vin", vin, gnd, spec.input.clone())?;
    let mut stage_in = vin;
    let mut width = 1.0;
    for s in 1..=spec.stages {
        let out = ckt.node(&format!("s{s}"));
        let nmos = MosfetModel::nmos().scaled_width(width);
        let pmos = MosfetModel::pmos().scaled_width(width);
        ckt.add_mosfet(&format!("MN{s}"), out, stage_in, gnd, nmos)?;
        ckt.add_mosfet(&format!("MP{s}"), out, stage_in, vdd, pmos)?;
        ckt.add_capacitor(&format!("CL{s}"), out, gnd, spec.load_capacitance * width)?;
        // Interconnect to the next stage.
        if s < spec.stages {
            let wire = ckt.node(&format!("w{s}"));
            ckt.add_resistor(&format!("RW{s}"), out, wire, spec.wire_resistance)?;
            ckt.add_capacitor(&format!("CW{s}"), wire, gnd, spec.wire_capacitance)?;
            stage_in = wire;
        }
        width *= spec.fanout;
    }
    Ok(ckt)
}

/// Parameters for [`power_grid`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerGridSpec {
    /// Number of rows in the mesh.
    pub rows: usize,
    /// Number of columns in the mesh.
    pub cols: usize,
    /// Resistance of each mesh segment in ohms.
    pub segment_resistance: f64,
    /// Decoupling capacitance at each grid node in farads.
    pub node_capacitance: f64,
    /// Supply voltage at the pads.
    pub vdd: f64,
    /// Number of current sinks (switching blocks) attached to grid nodes.
    pub num_sinks: usize,
    /// Peak sink current in amperes.
    pub sink_current: f64,
    /// Seed used to place the sinks.
    pub seed: u64,
}

impl Default for PowerGridSpec {
    fn default() -> Self {
        PowerGridSpec {
            rows: 8,
            cols: 8,
            segment_resistance: 1.0,
            node_capacitance: 1e-13,
            vdd: 1.0,
            num_sinks: 8,
            sink_current: 5e-3,
            seed: 7,
        }
    }
}

/// Builds a power-distribution-network mesh: resistive grid, decoupling
/// capacitors, corner supply pads and pulsed current sinks.
///
/// # Errors
///
/// Propagates device-construction errors, wrapped with the generator's name
/// ([`crate::NetlistError::Spec`]).
pub fn power_grid(spec: &PowerGridSpec) -> NetlistResult<Circuit> {
    build_power_grid(spec).map_err(|e| e.in_spec("power_grid"))
}

fn build_power_grid(spec: &PowerGridSpec) -> NetlistResult<Circuit> {
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let vdd = ckt.node("vdd");
    ckt.add_voltage_source("Vdd", vdd, gnd, Waveform::Dc(spec.vdd))?;
    let node_name = |r: usize, c: usize| format!("g_{r}_{c}");
    // Grid nodes, decap and mesh resistors.
    for r in 0..spec.rows {
        for c in 0..spec.cols {
            let n = ckt.node(&node_name(r, c));
            ckt.add_capacitor(&format!("Cd_{r}_{c}"), n, gnd, spec.node_capacitance)?;
            if c + 1 < spec.cols {
                let right = ckt.node(&node_name(r, c + 1));
                ckt.add_resistor(&format!("Rh_{r}_{c}"), n, right, spec.segment_resistance)?;
            }
            if r + 1 < spec.rows {
                let down = ckt.node(&node_name(r + 1, c));
                ckt.add_resistor(&format!("Rv_{r}_{c}"), n, down, spec.segment_resistance)?;
            }
        }
    }
    // Supply pads at the four corners (through small package resistances).
    for (i, (r, c)) in [
        (0, 0),
        (0, spec.cols.saturating_sub(1)),
        (spec.rows.saturating_sub(1), 0),
        (spec.rows.saturating_sub(1), spec.cols.saturating_sub(1)),
    ]
    .iter()
    .enumerate()
    {
        let n = ckt.node(&node_name(*r, *c));
        ckt.add_resistor(&format!("Rpad{i}"), vdd, n, 0.1)?;
    }
    // Random pulsed current sinks model switching logic blocks.
    let mut rng = StdRng::seed_from_u64(spec.seed);
    for k in 0..spec.num_sinks {
        let r = rng.gen_range(0..spec.rows);
        let c = rng.gen_range(0..spec.cols);
        let n = ckt.node(&node_name(r, c));
        let delay = rng.gen_range(0.0..2e-9);
        let wave = Waveform::Pulse {
            v1: 0.0,
            v2: spec.sink_current,
            delay,
            rise: 5e-11,
            fall: 5e-11,
            width: 5e-10,
            period: 4e-9,
        };
        // Current is drawn from the grid node to ground.
        ckt.add_current_source(&format!("Isink{k}"), n, gnd, wave)?;
    }
    Ok(ckt)
}

/// Parameters for [`rc_mesh`].
#[derive(Debug, Clone, PartialEq)]
pub struct RcMeshSpec {
    /// Number of rows in the mesh.
    pub rows: usize,
    /// Number of columns in the mesh.
    pub cols: usize,
    /// Resistance of each mesh edge in ohms.
    pub segment_resistance: f64,
    /// Capacitance to ground at each mesh node in farads.
    pub node_capacitance: f64,
    /// Series resistance between the driving source and the mesh corner.
    pub drive_resistance: f64,
    /// Amplitude of the driving ramp in volts.
    pub amplitude: f64,
    /// Rise time of the driving ramp in seconds.
    pub rise_time: f64,
}

impl Default for RcMeshSpec {
    fn default() -> Self {
        RcMeshSpec {
            rows: 16,
            cols: 16,
            segment_resistance: 10.0,
            node_capacitance: 1e-14,
            drive_resistance: 50.0,
            amplitude: 1.0,
            rise_time: 1e-10,
        }
    }
}

/// Builds a purely linear RC mesh: a `rows × cols` grid of resistors with a
/// capacitor to ground at every node, driven at one corner by a PWL ramp
/// through a series resistance. Unknowns scale as `rows · cols` (plus the
/// driver node and one branch current), so `100 × 100` gives the 10⁴-unknown
/// floor of the batch-scaling benchmark and `1000 × 1000` reaches 10⁶.
///
/// With no nonlinear devices, per-step work is dominated by the sparse
/// triangular solves and (re)factorizations — the regime where batch-level
/// parallel scaling is purely a question of solver and cache behaviour,
/// which is exactly what the `scaling` section of the bench sweep measures.
/// Node names are `m_<row>_<col>`; the far corner
/// `m_<rows-1>_<cols-1>` is the natural probe.
///
/// # Errors
///
/// Propagates device-construction errors, wrapped with the generator's name
/// ([`crate::NetlistError::Spec`]).
pub fn rc_mesh(spec: &RcMeshSpec) -> NetlistResult<Circuit> {
    build_rc_mesh(spec).map_err(|e| e.in_spec("rc_mesh"))
}

fn build_rc_mesh(spec: &RcMeshSpec) -> NetlistResult<Circuit> {
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let drive = ckt.node("in");
    ckt.add_voltage_source(
        "Vin",
        drive,
        gnd,
        Waveform::Pwl(vec![(0.0, 0.0), (spec.rise_time, spec.amplitude)]),
    )?;
    let node_name = |r: usize, c: usize| format!("m_{r}_{c}");
    for r in 0..spec.rows {
        for c in 0..spec.cols {
            let n = ckt.node(&node_name(r, c));
            ckt.add_capacitor(&format!("C_{r}_{c}"), n, gnd, spec.node_capacitance)?;
            if c + 1 < spec.cols {
                let right = ckt.node(&node_name(r, c + 1));
                ckt.add_resistor(&format!("Rh_{r}_{c}"), n, right, spec.segment_resistance)?;
            }
            if r + 1 < spec.rows {
                let down = ckt.node(&node_name(r + 1, c));
                ckt.add_resistor(&format!("Rv_{r}_{c}"), n, down, spec.segment_resistance)?;
            }
        }
    }
    let corner = ckt.node(&node_name(0, 0));
    ckt.add_resistor("Rdrv", drive, corner, spec.drive_resistance)?;
    Ok(ckt)
}

/// Parameters for [`coupled_lines`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledLinesSpec {
    /// Number of parallel interconnect lines.
    pub lines: usize,
    /// Number of RC segments per line.
    pub segments: usize,
    /// Series resistance per segment in ohms.
    pub segment_resistance: f64,
    /// Ground capacitance per segment in farads.
    pub ground_capacitance: f64,
    /// Coupling capacitance between vertically adjacent segments in farads
    /// (set to 0 to disable nearest-neighbour coupling).
    pub coupling_capacitance: f64,
    /// Number of *additional* random coupling capacitors injected across the
    /// whole structure, emulating a detailed parasitic extraction. This is the
    /// knob that controls `nnz(C)` in the Table I reproduction.
    pub random_couplings: usize,
    /// Whether each line is driven by a CMOS inverter (nonlinear driver) or an
    /// ideal voltage source with series resistance.
    pub mosfet_drivers: bool,
    /// Supply voltage for the drivers.
    pub vdd: f64,
    /// Seed for the random coupling placement and input skews.
    pub seed: u64,
}

impl Default for CoupledLinesSpec {
    fn default() -> Self {
        CoupledLinesSpec {
            lines: 8,
            segments: 20,
            segment_resistance: 20.0,
            ground_capacitance: 5e-15,
            coupling_capacitance: 2e-15,
            random_couplings: 0,
            mosfet_drivers: true,
            vdd: 1.0,
            seed: 11,
        }
    }
}

/// Builds a bundle of parallel driven interconnect lines with controllable
/// capacitive coupling — the post-layout "strongly coupled parasitics"
/// workload at the heart of the paper's Table I.
///
/// # Errors
///
/// Propagates device-construction errors, wrapped with the generator's name
/// ([`crate::NetlistError::Spec`]).
pub fn coupled_lines(spec: &CoupledLinesSpec) -> NetlistResult<Circuit> {
    build_coupled_lines(spec).map_err(|e| e.in_spec("coupled_lines"))
}

fn build_coupled_lines(spec: &CoupledLinesSpec) -> NetlistResult<Circuit> {
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let vdd = ckt.node("vdd");
    ckt.add_voltage_source("Vdd", vdd, gnd, Waveform::Dc(spec.vdd))?;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let node_name = |line: usize, seg: usize| format!("l{line}_{seg}");

    for line in 0..spec.lines {
        let input = ckt.node(&format!("in{line}"));
        let delay = 1e-10 + rng.gen_range(0.0..2e-10);
        let wave = Waveform::Pulse {
            v1: 0.0,
            v2: spec.vdd,
            delay,
            rise: 2e-11,
            fall: 2e-11,
            width: 1e-9,
            period: 2.5e-9,
        };
        ckt.add_voltage_source(&format!("Vin{line}"), input, gnd, wave)?;
        // Driver: inverter or linear source resistance.
        let first = ckt.node(&node_name(line, 0));
        if spec.mosfet_drivers {
            ckt.add_mosfet(
                &format!("MN{line}"),
                first,
                input,
                gnd,
                MosfetModel::nmos().scaled_width(4.0),
            )?;
            ckt.add_mosfet(
                &format!("MP{line}"),
                first,
                input,
                vdd,
                MosfetModel::pmos().scaled_width(4.0),
            )?;
        } else {
            ckt.add_resistor(&format!("Rdrv{line}"), input, first, 200.0)?;
        }
        ckt.add_capacitor(&format!("Cd{line}"), first, gnd, spec.ground_capacitance)?;
        // The RC line itself.
        let mut prev = first;
        for seg in 1..spec.segments {
            let node = ckt.node(&node_name(line, seg));
            ckt.add_resistor(
                &format!("R{line}_{seg}"),
                prev,
                node,
                spec.segment_resistance,
            )?;
            ckt.add_capacitor(
                &format!("C{line}_{seg}"),
                node,
                gnd,
                spec.ground_capacitance,
            )?;
            prev = node;
        }
    }
    // Nearest-neighbour coupling between adjacent lines.
    if spec.coupling_capacitance > 0.0 {
        for line in 0..spec.lines.saturating_sub(1) {
            for seg in 0..spec.segments {
                let a = ckt.node(&node_name(line, seg));
                let b = ckt.node(&node_name(line + 1, seg));
                ckt.add_capacitor(&format!("Cc{line}_{seg}"), a, b, spec.coupling_capacitance)?;
            }
        }
    }
    // Random long-range couplings emulating a dense extracted SPEF.
    for k in 0..spec.random_couplings {
        let la = rng.gen_range(0..spec.lines);
        let lb = rng.gen_range(0..spec.lines);
        let sa = rng.gen_range(0..spec.segments);
        let sb = rng.gen_range(0..spec.segments);
        let a = ckt.node(&node_name(la, sa));
        let b = ckt.node(&node_name(lb, sb));
        if a == b {
            continue;
        }
        let value = spec.coupling_capacitance.max(1e-16) * rng.gen_range(0.2..1.5);
        ckt.add_capacitor(&format!("Cx{k}"), a, b, value)?;
    }
    Ok(ckt)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plan-path evaluation shorthand.
    fn eval(ckt: &Circuit, x: &[f64]) -> crate::circuit::Evaluation {
        ckt.compile_plan().unwrap().evaluate(x).unwrap()
    }

    #[test]
    fn rc_ladder_structure() {
        let ckt = rc_ladder(&RcLadderSpec {
            segments: 5,
            ..RcLadderSpec::default()
        })
        .unwrap();
        // 5 internal nodes + input node + 1 branch current.
        assert_eq!(ckt.num_unknowns(), 7);
        assert_eq!(ckt.num_devices(), 11);
        assert!(ckt.unknown_of("n5").is_some());
    }

    #[test]
    fn inverter_chain_structure() {
        let spec = InverterChainSpec {
            stages: 4,
            ..InverterChainSpec::default()
        };
        let ckt = inverter_chain(&spec).unwrap();
        assert_eq!(ckt.num_nonlinear_devices(), 8);
        assert!(ckt.unknown_of("s4").is_some());
        assert!(ckt.unknown_of("s1").is_some());
        // in, vdd, s1..s4, w1..w3 plus 2 branch currents.
        assert_eq!(ckt.num_unknowns(), 2 + 4 + 3 + 2);
        let ev = eval(&ckt, &vec![0.0; ckt.num_unknowns()]);
        assert!(ev.c.nnz() > 0);
        assert!(ev.g.nnz() > 0);
    }

    #[test]
    fn power_grid_structure() {
        let spec = PowerGridSpec {
            rows: 4,
            cols: 5,
            num_sinks: 3,
            ..PowerGridSpec::default()
        };
        let ckt = power_grid(&spec).unwrap();
        // 20 grid nodes + vdd + 1 branch.
        assert_eq!(ckt.num_unknowns(), 22);
        assert!(ckt.unknown_of("g_3_4").is_some());
        assert_eq!(ckt.num_sources(), 1 + 3);
    }

    #[test]
    fn rc_mesh_structure_scales_with_the_grid() {
        let ckt = rc_mesh(&RcMeshSpec {
            rows: 5,
            cols: 7,
            ..RcMeshSpec::default()
        })
        .unwrap();
        // 35 mesh nodes + driver node + 1 branch current.
        assert_eq!(ckt.num_unknowns(), 5 * 7 + 2);
        assert_eq!(ckt.num_nonlinear_devices(), 0);
        assert!(ckt.unknown_of("m_4_6").is_some());
        let ev = eval(&ckt, &vec![0.0; ckt.num_unknowns()]);
        assert!(ev.g.nnz() > 0);
        assert!(ev.c.nnz() > 0);
        // A 100x100 mesh clears the 10^4-unknown floor of the scaling bench.
        let big = rc_mesh(&RcMeshSpec {
            rows: 100,
            cols: 100,
            ..RcMeshSpec::default()
        })
        .unwrap();
        assert!(big.num_unknowns() >= 10_000);
    }

    #[test]
    fn coupled_lines_coupling_density_knob() {
        let sparse_spec = CoupledLinesSpec {
            lines: 4,
            segments: 10,
            coupling_capacitance: 0.0,
            random_couplings: 0,
            mosfet_drivers: false,
            ..CoupledLinesSpec::default()
        };
        let dense_spec = CoupledLinesSpec {
            coupling_capacitance: 2e-15,
            random_couplings: 200,
            ..sparse_spec.clone()
        };
        let sparse = coupled_lines(&sparse_spec).unwrap();
        let dense = coupled_lines(&dense_spec).unwrap();
        let xs = vec![0.0; sparse.num_unknowns()];
        let xd = vec![0.0; dense.num_unknowns()];
        let es = eval(&sparse, &xs);
        let ed = eval(&dense, &xd);
        assert_eq!(sparse.num_unknowns(), dense.num_unknowns());
        assert!(
            ed.c.nnz() > 2 * es.c.nnz(),
            "coupling knob should grow nnz(C): {} vs {}",
            ed.c.nnz(),
            es.c.nnz()
        );
        // G is unaffected by the added capacitive coupling.
        assert_eq!(es.g.nnz(), ed.g.nnz());
    }

    #[test]
    fn generators_are_deterministic() {
        let spec = CoupledLinesSpec {
            random_couplings: 50,
            ..CoupledLinesSpec::default()
        };
        let a = coupled_lines(&spec).unwrap();
        let b = coupled_lines(&spec).unwrap();
        assert_eq!(a.num_devices(), b.num_devices());
        let x = vec![0.0; a.num_unknowns()];
        let ea = eval(&a, &x);
        let eb = eval(&b, &x);
        assert_eq!(ea.c.nnz(), eb.c.nnz());
        assert_eq!(ea.g.values(), eb.g.values());
    }

    #[test]
    fn generator_errors_carry_the_spec_name() {
        let bad = RcLadderSpec {
            segments: 3,
            resistance: -5.0,
            ..RcLadderSpec::default()
        };
        let err = rc_ladder(&bad).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("rc_ladder"), "{text}");
        assert!(
            matches!(
                err.root_cause(),
                crate::NetlistError::InvalidParameter { .. }
            ),
            "{err:?}"
        );
        let bad = InverterChainSpec {
            stages: 2,
            load_capacitance: -1.0,
            ..InverterChainSpec::default()
        };
        let text = inverter_chain(&bad).unwrap_err().to_string();
        assert!(text.contains("inverter_chain"), "{text}");
        let bad = PowerGridSpec {
            rows: 2,
            cols: 2,
            segment_resistance: -1.0,
            ..PowerGridSpec::default()
        };
        let text = power_grid(&bad).unwrap_err().to_string();
        assert!(text.contains("power_grid"), "{text}");
        let bad = RcMeshSpec {
            rows: 2,
            cols: 2,
            segment_resistance: -1.0,
            ..RcMeshSpec::default()
        };
        let text = rc_mesh(&bad).unwrap_err().to_string();
        assert!(text.contains("rc_mesh"), "{text}");
        let bad = CoupledLinesSpec {
            lines: 2,
            segments: 3,
            segment_resistance: -1.0,
            ..CoupledLinesSpec::default()
        };
        let text = coupled_lines(&bad).unwrap_err().to_string();
        assert!(text.contains("coupled_lines"), "{text}");
    }

    #[test]
    fn mosfet_drivers_add_nonlinear_devices() {
        let with = coupled_lines(&CoupledLinesSpec {
            lines: 3,
            mosfet_drivers: true,
            ..CoupledLinesSpec::default()
        })
        .unwrap();
        let without = coupled_lines(&CoupledLinesSpec {
            lines: 3,
            mosfet_drivers: false,
            ..CoupledLinesSpec::default()
        })
        .unwrap();
        assert_eq!(with.num_nonlinear_devices(), 6);
        assert_eq!(without.num_nonlinear_devices(), 0);
    }
}
