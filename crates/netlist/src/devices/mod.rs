//! Circuit devices and their MNA stamps.
//!
//! Every device contributes to the nonlinear MNA system
//!
//! ```text
//! C(x)·dx/dt + f(x) = B·u(t)            (paper Eq. 1, with q(x) differentiated)
//! ```
//!
//! through four quantities evaluated at a state `x`: the static current
//! vector `f(x)`, the charge/flux vector `q(x)`, and their Jacobians
//! `G(x) = ∂f/∂x` and `C(x) = ∂q/∂x`. Independent sources contribute columns
//! of the incidence matrix `B` and entries of `u(t)`.

mod diode;
mod mosfet;

pub use diode::{DiodeModel, DiodeOperatingPoint};
pub use mosfet::{MosfetModel, MosfetOperatingPoint, MosfetPolarity};

use exi_sparse::TripletMatrix;

use crate::node::NodeId;

/// A device instance in a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor between two nodes.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        resistance: f64,
    },
    /// Linear capacitor between two nodes.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be positive).
        capacitance: f64,
    },
    /// Linear inductor between two nodes; carries a branch-current unknown.
    Inductor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries (must be positive).
        inductance: f64,
        /// Index of the branch-current unknown.
        branch: usize,
    },
    /// Independent voltage source; carries a branch-current unknown.
    VoltageSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Index of the branch-current unknown.
        branch: usize,
        /// Index of the source waveform (column of `B`).
        source: usize,
    },
    /// Independent current source injecting current into its `to` terminal.
    CurrentSource {
        /// Instance name.
        name: String,
        /// Terminal the current is drawn from.
        from: NodeId,
        /// Terminal the current is injected into.
        to: NodeId,
        /// Index of the source waveform (column of `B`).
        source: usize,
    },
    /// Junction diode.
    Diode {
        /// Instance name.
        name: String,
        /// Anode terminal.
        anode: NodeId,
        /// Cathode terminal.
        cathode: NodeId,
        /// Model parameters.
        model: DiodeModel,
    },
    /// Level-1 MOSFET (drain, gate, source; bulk tied to source).
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal.
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// Model parameters.
        model: MosfetModel,
    },
}

impl Device {
    /// Instance name of the device.
    pub fn name(&self) -> &str {
        match self {
            Device::Resistor { name, .. }
            | Device::Capacitor { name, .. }
            | Device::Inductor { name, .. }
            | Device::VoltageSource { name, .. }
            | Device::CurrentSource { name, .. }
            | Device::Diode { name, .. }
            | Device::Mosfet { name, .. } => name,
        }
    }

    /// Returns `true` for devices whose stamps depend on the state vector.
    pub fn is_nonlinear(&self) -> bool {
        matches!(self, Device::Diode { .. } | Device::Mosfet { .. })
    }

    /// Stamps the device's contribution at state `x` into the assembly
    /// context.
    pub(crate) fn stamp(&self, ctx: &mut StampContext<'_>) {
        match self {
            Device::Resistor {
                a, b, resistance, ..
            } => {
                let g = 1.0 / resistance;
                let va = ctx.voltage(*a);
                let vb = ctx.voltage(*b);
                let i = g * (va - vb);
                ctx.add_f(a.unknown(), i);
                ctx.add_f(b.unknown(), -i);
                ctx.stamp_conductance(*a, *b, g);
            }
            Device::Capacitor {
                a, b, capacitance, ..
            } => {
                let va = ctx.voltage(*a);
                let vb = ctx.voltage(*b);
                let q = capacitance * (va - vb);
                ctx.add_q(a.unknown(), q);
                ctx.add_q(b.unknown(), -q);
                ctx.stamp_capacitance(*a, *b, *capacitance);
            }
            Device::Inductor {
                a,
                b,
                inductance,
                branch,
                ..
            } => {
                let row = ctx.branch_row(*branch);
                let il = ctx.branch_value(*branch);
                let va = ctx.voltage(*a);
                let vb = ctx.voltage(*b);
                // KCL: the branch current leaves `a` and enters `b`.
                ctx.add_f(a.unknown(), il);
                ctx.add_f(b.unknown(), -il);
                ctx.add_g(a.unknown(), row, 1.0);
                ctx.add_g(b.unknown(), row, -1.0);
                // Branch equation: L·di/dt − (v_a − v_b) = 0.
                ctx.add_q(row, inductance * il);
                ctx.add_c(row, row, *inductance);
                ctx.add_f(row, -(va - vb));
                ctx.add_g(row, a.unknown(), -1.0);
                ctx.add_g(row, b.unknown(), 1.0);
            }
            Device::VoltageSource {
                pos,
                neg,
                branch,
                source,
                ..
            } => {
                let row = ctx.branch_row(*branch);
                let i = ctx.branch_value(*branch);
                let vp = ctx.voltage(*pos);
                let vn = ctx.voltage(*neg);
                ctx.add_f(pos.unknown(), i);
                ctx.add_f(neg.unknown(), -i);
                ctx.add_g(pos.unknown(), row, 1.0);
                ctx.add_g(neg.unknown(), row, -1.0);
                // Branch equation: v_pos − v_neg = u(t).
                ctx.add_f(row, vp - vn);
                ctx.add_g(row, pos.unknown(), 1.0);
                ctx.add_g(row, neg.unknown(), -1.0);
                ctx.add_b(row, *source, 1.0);
            }
            Device::CurrentSource {
                from, to, source, ..
            } => {
                ctx.add_b(to.unknown(), *source, 1.0);
                ctx.add_b(from.unknown(), *source, -1.0);
            }
            Device::Diode {
                anode,
                cathode,
                model,
                ..
            } => {
                let vd = ctx.voltage(*anode) - ctx.voltage(*cathode);
                let op = model.evaluate(vd);
                ctx.add_f(anode.unknown(), op.current);
                ctx.add_f(cathode.unknown(), -op.current);
                ctx.stamp_conductance(*anode, *cathode, op.conductance + ctx.gmin);
                let q = model.junction_capacitance * vd;
                ctx.add_q(anode.unknown(), q);
                ctx.add_q(cathode.unknown(), -q);
                ctx.stamp_capacitance(*anode, *cathode, model.junction_capacitance);
            }
            Device::Mosfet {
                drain,
                gate,
                source,
                model,
                ..
            } => {
                let vd = ctx.voltage(*drain);
                let vg = ctx.voltage(*gate);
                let vs = ctx.voltage(*source);
                let op = model.evaluate(vg - vs, vd - vs);
                // Channel current flows from drain to source.
                ctx.add_f(drain.unknown(), op.ids);
                ctx.add_f(source.unknown(), -op.ids);
                let gm = op.gm;
                let gds = op.gds;
                ctx.add_g(drain.unknown(), drain.unknown(), gds);
                ctx.add_g(drain.unknown(), gate.unknown(), gm);
                ctx.add_g(drain.unknown(), source.unknown(), -(gm + gds));
                ctx.add_g(source.unknown(), drain.unknown(), -gds);
                ctx.add_g(source.unknown(), gate.unknown(), -gm);
                ctx.add_g(source.unknown(), source.unknown(), gm + gds);
                // Leakage conductance keeps the Jacobian well conditioned in
                // cut-off, mirroring SPICE's GMIN.
                ctx.stamp_conductance(*drain, *source, ctx.gmin);
                // Gate overlap capacitances.
                let qgs = model.cgs * (vg - vs);
                ctx.add_q(gate.unknown(), qgs);
                ctx.add_q(source.unknown(), -qgs);
                ctx.stamp_capacitance(*gate, *source, model.cgs);
                let qgd = model.cgd * (vg - vd);
                ctx.add_q(gate.unknown(), qgd);
                ctx.add_q(drain.unknown(), -qgd);
                ctx.stamp_capacitance(*gate, *drain, model.cgd);
            }
        }
    }
}

/// Mutable assembly buffers a device stamps into.
#[derive(Debug)]
pub(crate) struct StampContext<'a> {
    /// State vector the devices are evaluated at.
    pub x: &'a [f64],
    /// Jacobian of the static currents, `G(x)`.
    pub g: &'a mut TripletMatrix,
    /// Jacobian of the charges, `C(x)`.
    pub c: &'a mut TripletMatrix,
    /// Static current vector `f(x)`.
    pub f: &'a mut [f64],
    /// Charge/flux vector `q(x)`.
    pub q: &'a mut [f64],
    /// Source incidence triplets (`B`), only filled when requested.
    pub b: Option<&'a mut TripletMatrix>,
    /// Minimum conductance stamped across nonlinear junctions.
    pub gmin: f64,
    /// Index of the first branch-current unknown (= number of node unknowns).
    pub branch_offset: usize,
}

impl StampContext<'_> {
    fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// Row index of the branch-current unknown with the given ordinal.
    fn branch_row(&self, ordinal: usize) -> Option<usize> {
        Some(self.branch_offset + ordinal)
    }

    /// Value of the branch-current unknown with the given ordinal.
    fn branch_value(&self, ordinal: usize) -> f64 {
        self.x[self.branch_offset + ordinal]
    }

    fn add_f(&mut self, row: Option<usize>, value: f64) {
        if let Some(r) = row {
            self.f[r] += value;
        }
    }

    fn add_q(&mut self, row: Option<usize>, value: f64) {
        if let Some(r) = row {
            self.q[r] += value;
        }
    }

    fn add_g(&mut self, row: Option<usize>, col: Option<usize>, value: f64) {
        if let (Some(r), Some(c)) = (row, col) {
            self.g.push(r, c, value);
        }
    }

    fn add_c(&mut self, row: Option<usize>, col: Option<usize>, value: f64) {
        if let (Some(r), Some(c)) = (row, col) {
            self.c.push(r, c, value);
        }
    }

    fn add_b(&mut self, row: Option<usize>, source: usize, value: f64) {
        if let (Some(b), Some(r)) = (self.b.as_deref_mut(), row) {
            b.push(r, source, value);
        }
    }

    /// Standard two-terminal conductance stamp.
    fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        self.add_g(a.unknown(), a.unknown(), g);
        self.add_g(b.unknown(), b.unknown(), g);
        self.add_g(a.unknown(), b.unknown(), -g);
        self.add_g(b.unknown(), a.unknown(), -g);
    }

    /// Standard two-terminal capacitance stamp.
    fn stamp_capacitance(&mut self, a: NodeId, b: NodeId, c: f64) {
        self.add_c(a.unknown(), a.unknown(), c);
        self.add_c(b.unknown(), b.unknown(), c);
        self.add_c(a.unknown(), b.unknown(), -c);
        self.add_c(b.unknown(), a.unknown(), -c);
    }
}
