//! Junction diode model (exponential Shockley equation with high-bias
//! linearization).
//!
//! The paper evaluates its devices with BSIM3; this reproduction substitutes
//! compact first-order models (see DESIGN.md). What matters for the
//! integrators is that the device supplies a current `i(v)`, a conductance
//! `di/dv` and a charge `q(v)` with the same exponential stiffness character.

/// Parameters of a junction diode.
#[derive(Debug, Clone, PartialEq)]
pub struct DiodeModel {
    /// Saturation current `I_S` in amperes.
    pub saturation_current: f64,
    /// Emission coefficient `n`.
    pub emission_coefficient: f64,
    /// Thermal voltage `V_T` in volts (kT/q at 300 K by default).
    pub thermal_voltage: f64,
    /// Constant junction capacitance in farads.
    pub junction_capacitance: f64,
}

impl Default for DiodeModel {
    fn default() -> Self {
        DiodeModel {
            saturation_current: 1e-14,
            emission_coefficient: 1.0,
            thermal_voltage: 0.025852,
            junction_capacitance: 1e-15,
        }
    }
}

/// Operating point of a diode at a given junction voltage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiodeOperatingPoint {
    /// Diode current from anode to cathode.
    pub current: f64,
    /// Small-signal conductance `di/dv`.
    pub conductance: f64,
}

/// Voltage (in units of `n·V_T`) above which the exponential is linearized to
/// avoid overflow, mirroring the classic SPICE treatment.
const EXP_LIMIT: f64 = 40.0;

impl DiodeModel {
    /// Evaluates current and conductance at junction voltage `vd`.
    ///
    /// # Examples
    ///
    /// ```
    /// use exi_netlist::devices::DiodeModel;
    ///
    /// let d = DiodeModel::default();
    /// let op = d.evaluate(0.0);
    /// assert_eq!(op.current, 0.0);
    /// assert!(d.evaluate(0.7).current > 1e-3); // forward biased
    /// assert!(d.evaluate(-1.0).current < 0.0); // reverse saturation
    /// ```
    pub fn evaluate(&self, vd: f64) -> DiodeOperatingPoint {
        let nvt = self.emission_coefficient * self.thermal_voltage;
        let x = vd / nvt;
        if x > EXP_LIMIT {
            // Linear extension beyond the limit keeps Newton iterations finite.
            let e = EXP_LIMIT.exp();
            let current = self.saturation_current * (e * (1.0 + (x - EXP_LIMIT)) - 1.0);
            let conductance = self.saturation_current * e / nvt;
            DiodeOperatingPoint {
                current,
                conductance,
            }
        } else {
            let e = x.exp();
            DiodeOperatingPoint {
                current: self.saturation_current * (e - 1.0),
                conductance: self.saturation_current * e / nvt,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bias_has_zero_current() {
        let d = DiodeModel::default();
        let op = d.evaluate(0.0);
        assert_eq!(op.current, 0.0);
        assert!(op.conductance > 0.0);
    }

    #[test]
    fn reverse_bias_saturates() {
        let d = DiodeModel::default();
        let op = d.evaluate(-5.0);
        assert!((op.current + d.saturation_current).abs() < 1e-20);
        assert!(op.conductance >= 0.0);
    }

    #[test]
    fn conductance_matches_finite_difference() {
        let d = DiodeModel::default();
        for &vd in &[-0.5, 0.0, 0.3, 0.6, 0.75] {
            let dv = 1e-7;
            let fd = (d.evaluate(vd + dv).current - d.evaluate(vd - dv).current) / (2.0 * dv);
            let an = d.evaluate(vd).conductance;
            let scale = an.abs().max(1e-12);
            assert!((fd - an).abs() / scale < 1e-4, "vd = {vd}: {fd} vs {an}");
        }
    }

    #[test]
    fn high_bias_does_not_overflow_and_stays_monotone() {
        let d = DiodeModel::default();
        let a = d.evaluate(2.0);
        let b = d.evaluate(5.0);
        assert!(a.current.is_finite() && b.current.is_finite());
        assert!(b.current > a.current);
        assert!(b.conductance > 0.0);
    }
}
