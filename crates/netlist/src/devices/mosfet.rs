//! Level-1 (Shichman–Hodges) MOSFET model.
//!
//! Stands in for the BSIM3 evaluation used in the paper (see DESIGN.md for
//! the substitution rationale): quadratic/linear I–V with channel-length
//! modulation, symmetric drain/source swapping, and constant gate overlap
//! capacitances that couple the gate to drain and source.

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosfetPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Parameters of a level-1 MOSFET.
#[derive(Debug, Clone, PartialEq)]
pub struct MosfetModel {
    /// Channel polarity.
    pub polarity: MosfetPolarity,
    /// Threshold voltage (positive for NMOS, negative for PMOS).
    pub threshold: f64,
    /// Process transconductance `k' = µ·C_ox` in A/V².
    pub transconductance: f64,
    /// Channel-length modulation coefficient λ in 1/V.
    pub lambda: f64,
    /// Channel width in meters.
    pub width: f64,
    /// Channel length in meters.
    pub length: f64,
    /// Gate-source overlap capacitance in farads.
    pub cgs: f64,
    /// Gate-drain overlap capacitance in farads.
    pub cgd: f64,
}

impl MosfetModel {
    /// A representative NMOS device for a generic 65 nm-class process.
    pub fn nmos() -> Self {
        MosfetModel {
            polarity: MosfetPolarity::Nmos,
            threshold: 0.4,
            transconductance: 2.0e-4,
            lambda: 0.05,
            width: 1.0e-6,
            length: 1.0e-7,
            cgs: 0.5e-15,
            cgd: 0.3e-15,
        }
    }

    /// A representative PMOS device (mobility roughly half of NMOS).
    pub fn pmos() -> Self {
        MosfetModel {
            polarity: MosfetPolarity::Pmos,
            threshold: -0.4,
            transconductance: 1.0e-4,
            lambda: 0.05,
            width: 2.0e-6,
            length: 1.0e-7,
            cgs: 1.0e-15,
            cgd: 0.6e-15,
        }
    }

    /// Returns a copy with the channel width scaled by `factor` (current and
    /// capacitances scale proportionally).
    pub fn scaled_width(&self, factor: f64) -> Self {
        MosfetModel {
            width: self.width * factor,
            cgs: self.cgs * factor,
            cgd: self.cgd * factor,
            ..self.clone()
        }
    }

    /// Device gain factor `β = k'·W/L`.
    pub fn beta(&self) -> f64 {
        self.transconductance * self.width / self.length
    }

    /// Evaluates the drain current and its derivatives at the given terminal
    /// voltages (`vgs = V_G - V_S`, `vds = V_D - V_S`).
    ///
    /// The returned quantities follow SPICE conventions: `ids` is the current
    /// flowing from drain to source (negative for PMOS in normal operation),
    /// `gm = ∂ids/∂vgs`, `gds = ∂ids/∂vds`.
    ///
    /// # Examples
    ///
    /// ```
    /// use exi_netlist::devices::MosfetModel;
    ///
    /// let m = MosfetModel::nmos();
    /// let off = m.evaluate(0.0, 1.0);
    /// assert_eq!(off.ids, 0.0);
    /// let on = m.evaluate(1.0, 1.0);
    /// assert!(on.ids > 0.0);
    /// ```
    pub fn evaluate(&self, vgs: f64, vds: f64) -> MosfetOperatingPoint {
        match self.polarity {
            MosfetPolarity::Nmos => self.evaluate_nchannel(vgs, vds, self.threshold),
            MosfetPolarity::Pmos => {
                // A PMOS is an N-channel device with all voltages (and the
                // current) negated.
                let op = self.evaluate_nchannel(-vgs, -vds, -self.threshold);
                MosfetOperatingPoint {
                    ids: -op.ids,
                    gm: op.gm,
                    gds: op.gds,
                }
            }
        }
    }

    fn evaluate_nchannel(&self, vgs: f64, vds: f64, vth: f64) -> MosfetOperatingPoint {
        // Symmetric device: for vds < 0 exchange drain and source.
        if vds < 0.0 {
            let op = self.forward_nchannel(vgs - vds, -vds, vth);
            // With swapped terminals: ids' = -ids, and derivatives transform as
            //   gm(vgs)  = d(-ids')/dvgs   = -gm'
            //   gds(vds) = d(-ids')/dvds   = gm' + gds'
            return MosfetOperatingPoint {
                ids: -op.ids,
                gm: -op.gm,
                gds: op.gm + op.gds,
            };
        }
        self.forward_nchannel(vgs, vds, vth)
    }

    fn forward_nchannel(&self, vgs: f64, vds: f64, vth: f64) -> MosfetOperatingPoint {
        let beta = self.beta();
        let vov = vgs - vth;
        if vov <= 0.0 {
            // Cut-off.
            return MosfetOperatingPoint {
                ids: 0.0,
                gm: 0.0,
                gds: 0.0,
            };
        }
        let clm = 1.0 + self.lambda * vds;
        if vds < vov {
            // Triode / linear region.
            let ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
            let gm = beta * vds * clm;
            let gds = beta * ((vov - vds) * clm + (vov * vds - 0.5 * vds * vds) * self.lambda);
            MosfetOperatingPoint { ids, gm, gds }
        } else {
            // Saturation.
            let ids = 0.5 * beta * vov * vov * clm;
            let gm = beta * vov * clm;
            let gds = 0.5 * beta * vov * vov * self.lambda;
            MosfetOperatingPoint { ids, gm, gds }
        }
    }
}

/// Drain current and small-signal derivatives of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosfetOperatingPoint {
    /// Drain-to-source current.
    pub ids: f64,
    /// Transconductance `∂ids/∂vgs`.
    pub gm: f64,
    /// Output conductance `∂ids/∂vds`.
    pub gds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_linear_saturation_regions() {
        let m = MosfetModel::nmos();
        assert_eq!(m.evaluate(0.2, 1.0).ids, 0.0);
        let lin = m.evaluate(1.0, 0.1);
        let sat = m.evaluate(1.0, 1.0);
        assert!(lin.ids > 0.0 && sat.ids > lin.ids);
        // Saturation current roughly beta/2*vov^2.
        let expected = 0.5 * m.beta() * 0.6 * 0.6 * (1.0 + 0.05);
        assert!((sat.ids - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = MosfetModel::pmos();
        // PMOS conducting: vgs = -1.0, vds = -1.0; current should be negative
        // (drain-to-source current flows "backwards").
        let op = p.evaluate(-1.0, -1.0);
        assert!(op.ids < 0.0);
        assert!(op.gm > 0.0);
        // Off when vgs = 0.
        assert_eq!(p.evaluate(0.0, -1.0).ids, 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let devices = [MosfetModel::nmos(), MosfetModel::pmos()];
        let points = [
            (0.9, 0.05),
            (0.9, 1.2),
            (0.45, 0.3),
            (-0.9, -0.05),
            (-0.9, -1.2),
            (0.7, -0.4),
            (-0.7, 0.4),
        ];
        let dv = 1e-7;
        for m in &devices {
            for &(vgs, vds) in &points {
                let op = m.evaluate(vgs, vds);
                let gm_fd =
                    (m.evaluate(vgs + dv, vds).ids - m.evaluate(vgs - dv, vds).ids) / (2.0 * dv);
                let gds_fd =
                    (m.evaluate(vgs, vds + dv).ids - m.evaluate(vgs, vds - dv).ids) / (2.0 * dv);
                let scale = m.beta().max(1e-12);
                assert!(
                    (op.gm - gm_fd).abs() / scale < 1e-5,
                    "{:?} gm at ({vgs},{vds}): {} vs {}",
                    m.polarity,
                    op.gm,
                    gm_fd
                );
                assert!(
                    (op.gds - gds_fd).abs() / scale < 1e-5,
                    "{:?} gds at ({vgs},{vds}): {} vs {}",
                    m.polarity,
                    op.gds,
                    gds_fd
                );
            }
        }
    }

    #[test]
    fn current_is_continuous_across_region_boundaries() {
        let m = MosfetModel::nmos();
        let vgs = 1.0;
        let vov = vgs - m.threshold;
        let eps = 1e-9;
        let below = m.evaluate(vgs, vov - eps).ids;
        let above = m.evaluate(vgs, vov + eps).ids;
        assert!((below - above).abs() < 1e-9 * m.beta());
        // Across vds = 0.
        let neg = m.evaluate(vgs, -eps).ids;
        let pos = m.evaluate(vgs, eps).ids;
        // The current itself is O(beta * vov * eps) on both sides of zero.
        assert!((neg - pos).abs() < 3.0 * eps * m.beta());
        assert!(neg <= 0.0 && pos >= 0.0);
    }

    #[test]
    fn width_scaling_scales_current_and_caps() {
        let m = MosfetModel::nmos();
        let m4 = m.scaled_width(4.0);
        assert!((m4.evaluate(1.0, 1.0).ids / m.evaluate(1.0, 1.0).ids - 4.0).abs() < 1e-12);
        assert_eq!(m4.cgs, 4.0 * m.cgs);
    }
}
