//! Error types for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing a circuit netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A device referenced a node name that could not be created or resolved.
    UnknownNode {
        /// The offending node name.
        name: String,
    },
    /// A device parameter is out of its physical range (e.g. negative
    /// resistance where not allowed, zero capacitance).
    InvalidParameter {
        /// Device name.
        device: String,
        /// Parameter name.
        parameter: &'static str,
        /// Supplied value.
        value: f64,
    },
    /// A netlist line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A duplicate device name was encountered.
    DuplicateDevice {
        /// The duplicated name.
        name: String,
    },
    /// The circuit has no unknowns (empty or everything grounded).
    EmptyCircuit,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode { name } => write!(f, "unknown node '{name}'"),
            NetlistError::InvalidParameter {
                device,
                parameter,
                value,
            } => {
                write!(
                    f,
                    "invalid parameter {parameter} = {value} on device '{device}'"
                )
            }
            NetlistError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            NetlistError::DuplicateDevice { name } => write!(f, "duplicate device name '{name}'"),
            NetlistError::EmptyCircuit => write!(f, "circuit has no unknowns"),
        }
    }
}

impl Error for NetlistError {}

/// Result alias for this crate.
pub type NetlistResult<T> = Result<T, NetlistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetlistError::UnknownNode { name: "x".into() }
            .to_string()
            .contains("x"));
        assert!(NetlistError::EmptyCircuit
            .to_string()
            .contains("no unknowns"));
        let e = NetlistError::InvalidParameter {
            device: "R1".into(),
            parameter: "resistance",
            value: -1.0,
        };
        assert!(e.to_string().contains("R1"));
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = NetlistError::DuplicateDevice { name: "M1".into() };
        assert!(e.to_string().contains("M1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
