//! Error types for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing a circuit netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A device referenced a node name that could not be created or resolved.
    UnknownNode {
        /// The offending node name.
        name: String,
    },
    /// A device parameter is out of its physical range (e.g. negative
    /// resistance where not allowed, zero capacitance).
    InvalidParameter {
        /// Device name.
        device: String,
        /// Parameter name.
        parameter: &'static str,
        /// Supplied value.
        value: f64,
    },
    /// A netlist line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A duplicate device name was encountered.
    DuplicateDevice {
        /// The duplicated name.
        name: String,
    },
    /// The circuit has no unknowns (empty or everything grounded).
    EmptyCircuit,
    /// An error raised while building a named generator spec or benchmark
    /// case — wraps the underlying error with the offending spec's name so
    /// batch-failure reports identify which sweep member went wrong.
    Spec {
        /// Name of the spec/case being built (e.g. `rc_ladder`, `tc6`).
        spec: String,
        /// The underlying error.
        source: Box<NetlistError>,
    },
}

impl NetlistError {
    /// Wraps this error with the name of the spec that was being built,
    /// preserving the original error as [`std::error::Error::source`].
    /// Contexts nest: a benchmark case wrapping a generator error yields
    /// `case → generator → cause`.
    #[must_use]
    pub fn in_spec(self, spec: impl Into<String>) -> Self {
        NetlistError::Spec {
            spec: spec.into(),
            source: Box::new(self),
        }
    }

    /// The innermost error, unwrapping any [`NetlistError::Spec`] layers.
    pub fn root_cause(&self) -> &NetlistError {
        match self {
            NetlistError::Spec { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode { name } => write!(f, "unknown node '{name}'"),
            NetlistError::InvalidParameter {
                device,
                parameter,
                value,
            } => {
                write!(
                    f,
                    "invalid parameter {parameter} = {value} on device '{device}'"
                )
            }
            NetlistError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            NetlistError::DuplicateDevice { name } => write!(f, "duplicate device name '{name}'"),
            NetlistError::EmptyCircuit => write!(f, "circuit has no unknowns"),
            NetlistError::Spec { spec, source } => {
                write!(f, "while building spec '{spec}': {source}")
            }
        }
    }
}

impl Error for NetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetlistError::Spec { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Result alias for this crate.
pub type NetlistResult<T> = Result<T, NetlistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetlistError::UnknownNode { name: "x".into() }
            .to_string()
            .contains("x"));
        assert!(NetlistError::EmptyCircuit
            .to_string()
            .contains("no unknowns"));
        let e = NetlistError::InvalidParameter {
            device: "R1".into(),
            parameter: "resistance",
            value: -1.0,
        };
        assert!(e.to_string().contains("R1"));
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = NetlistError::DuplicateDevice { name: "M1".into() };
        assert!(e.to_string().contains("M1"));
    }

    #[test]
    fn spec_context_wraps_and_nests() {
        let cause = NetlistError::InvalidParameter {
            device: "R1".into(),
            parameter: "resistance",
            value: -1.0,
        };
        let wrapped = cause.clone().in_spec("rc_ladder").in_spec("tc3");
        let text = wrapped.to_string();
        assert!(text.contains("tc3"), "{text}");
        assert!(text.contains("rc_ladder"), "{text}");
        assert!(text.contains("R1"), "{text}");
        assert_eq!(wrapped.root_cause(), &cause);
        // The source chain exposes each layer for error-report walkers.
        let source = Error::source(&wrapped).expect("outer source");
        assert!(source.to_string().contains("rc_ladder"));
        // A plain error is its own root cause.
        assert_eq!(cause.root_cause(), &cause);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
