//! Precompiled evaluation plans: allocation-free, pattern-locked device
//! restamping for the simulator hot loop.
//!
//! [`Circuit::evaluate`](crate::Circuit::evaluate) rebuilds COO triplet
//! vectors and runs a sort-and-dedup CSR compression on every call — per
//! Newton iteration and per accepted step, even though the circuit topology
//! (and with it almost the entire stamp structure) never changes during a
//! run. An [`EvalPlan`] performs that topology analysis **once**:
//!
//! * The **linear baseline** — every stamp whose value does not depend on
//!   the state vector (resistors, capacitors, inductors, sources, the
//!   constant `gmin` and junction/overlap capacitances of the nonlinear
//!   devices) — is compressed to CSR at compile time. Rows touched only by
//!   the baseline are restored per evaluation by flat `copy_from_slice`
//!   calls.
//! * The **nonlinear delta set** — the handful of conductance entries a
//!   diode or MOSFET rewrites per evaluation — is kept as per-row scatter
//!   slots. Only rows containing at least one such slot are re-deduplicated
//!   per evaluation, so per-step assembly cost scales with the nonlinear
//!   device count, not the circuit size.
//!
//! [`EvalPlan::evaluate_into`] restamps into caller-owned buffers: no COO,
//! no full-matrix sort, and — once the buffers have warmed up — no
//! allocation ([`EvalWorkspace::allocations`] counts the warm-ups so
//! regressions are observable).
//!
//! # Bit-compatibility contract
//!
//! The plan path is **bit-identical** to the legacy COO path
//! ([`Circuit::evaluate_reference`]) for every circuit and every state
//! vector. This is by construction, not by accident, and it constrains the
//! implementation in two ways worth knowing before modifying it:
//!
//! 1. The legacy path drops stamps whose value is exactly `0.0` *before*
//!    compression and cells whose duplicates cancel to exactly `0.0`
//!    *during* compression — so a MOSFET in cut-off (`gm == gds == 0.0`)
//!    shrinks the conductance pattern. Rows with nonlinear slots therefore
//!    replay the exact legacy pipeline per evaluation (zero-filter, the
//!    same `sort_unstable_by_key`, run-summation in the same order) on a
//!    reused scratch buffer; purely linear rows get the same pipeline once
//!    at compile time.
//! 2. Per-cell duplicate summation order must match the legacy bucketing
//!    (global push order restricted to the row, then the standard-library
//!    sort's permutation). Both halves reuse the identical algorithm on
//!    identically typed data, so the permutation — and hence every rounded
//!    sum — matches.
//!
//! `tests/proptest_plan.rs` pins the contract on randomized circuits; the
//! golden-waveform suite pins it end to end.
//!
//! # Example
//!
//! ```
//! use exi_netlist::{Circuit, Waveform};
//!
//! # fn main() -> Result<(), exi_netlist::NetlistError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! let gnd = ckt.node("0");
//! ckt.add_voltage_source("Vin", vin, gnd, Waveform::Dc(1.0))?;
//! ckt.add_resistor("R1", vin, out, 1e3)?;
//! ckt.add_capacitor("C1", out, gnd, 1e-12)?;
//!
//! let plan = ckt.compile_plan()?;           // once per topology
//! let mut ws = plan.new_workspace();
//! let mut ev = plan.new_evaluation();
//! let x = vec![0.0; ckt.num_unknowns()];
//! plan.evaluate_into(&x, &mut ws, &mut ev)?; // per step: restamp in place
//! assert_eq!(ev.g.rows(), 3);
//! assert_eq!(ws.allocations(), 0);           // buffers were pre-sized
//! # Ok(())
//! # }
//! ```

use exi_sparse::{CsrMatrix, TripletMatrix};

use crate::circuit::{Circuit, Evaluation};
use crate::devices::{Device, DiodeModel, MosfetModel};
use crate::error::{NetlistError, NetlistResult};
use crate::node::NodeId;

/// Where a matrix entry's value comes from at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Src {
    /// A state-independent stamp, frozen at compile time.
    Const(f64),
    /// A nonlinear scatter slot, rewritten by a device kernel per
    /// evaluation.
    Slot(u32),
}

/// One raw (pre-compression) stamp contribution of a dynamic row, in global
/// push order.
#[derive(Debug, Clone, Copy)]
struct DynEntry {
    col: usize,
    src: Src,
}

/// Per-row assembly strategy.
#[derive(Debug, Clone, Copy)]
enum RowPlan {
    /// The row holds only baseline stamps: its compressed cells live in the
    /// plan's fixed CSR and are restored by `copy_from_slice`.
    Fixed,
    /// The row receives at least one nonlinear slot: its raw contributions
    /// (`dyn_entries[start..end]`) are zero-filtered, sorted and
    /// run-summed per evaluation — the exact legacy pipeline, restricted to
    /// this row.
    Dynamic { start: u32, end: u32 },
}

/// Compiled assembly recipe for one MNA matrix (`G` or `C`).
#[derive(Debug, Clone)]
struct MatrixPlan {
    cols: usize,
    /// Baseline cells, compressed at compile time; dynamic rows are empty
    /// here.
    fixed: CsrMatrix,
    rows: Vec<RowPlan>,
    dyn_entries: Vec<DynEntry>,
    /// Upper bound on the assembled nonzero count (baseline cells plus one
    /// cell per raw dynamic contribution) — the buffer pre-sizing target.
    max_nnz: usize,
    /// Longest dynamic row's raw contribution count (scratch pre-sizing).
    max_row_entries: usize,
}

/// Compiled per-device runtime kernel: the state-dependent work (`f`/`q`
/// accumulation and nonlinear slot values) with every node already resolved
/// to an unknown index (`None` = ground).
#[derive(Debug, Clone)]
enum DeviceKernel {
    Resistor {
        a: Option<usize>,
        b: Option<usize>,
        conductance: f64,
    },
    Capacitor {
        a: Option<usize>,
        b: Option<usize>,
        capacitance: f64,
    },
    Inductor {
        a: Option<usize>,
        b: Option<usize>,
        row: usize,
        inductance: f64,
    },
    VoltageSource {
        pos: Option<usize>,
        neg: Option<usize>,
        row: usize,
    },
    /// Current sources stamp only the constant `B` matrix: nothing to do per
    /// evaluation.
    Inert,
    Diode {
        anode: Option<usize>,
        cathode: Option<usize>,
        model: DiodeModel,
        /// Slots for the four conductance cells `(a,a) (c,c) (a,c) (c,a)`,
        /// `None` where a terminal is ground.
        slots: [Option<u32>; 4],
    },
    Mosfet {
        drain: Option<usize>,
        gate: Option<usize>,
        source: Option<usize>,
        model: MosfetModel,
        /// Slots for `(d,d) (d,g) (d,s) (s,d) (s,g) (s,s)` in stamp order,
        /// `None` where a cell touches ground.
        slots: [Option<u32>; 6],
    },
}

/// Reusable scratch state for [`EvalPlan::evaluate_into`].
///
/// Holds the nonlinear slot values and the per-row compression scratch.
/// Create one per thread/session with [`EvalPlan::new_workspace`] (which
/// pre-sizes every buffer) and reuse it for every evaluation.
#[derive(Debug, Default, Clone)]
pub struct EvalWorkspace {
    slots: Vec<f64>,
    scratch: Vec<(usize, f64)>,
    allocations: usize,
}

impl EvalWorkspace {
    /// Creates an empty workspace; buffers grow (and are counted) on first
    /// use. Prefer [`EvalPlan::new_workspace`], which pre-sizes them.
    pub fn new() -> Self {
        EvalWorkspace::default()
    }

    /// Number of times an evaluation had to grow one of the plan-path
    /// buffers (workspace scratch or the `Evaluation`'s storage). With
    /// pre-sized buffers this stays at zero; a counter that climbs with the
    /// step count is a hot-loop allocation regression.
    pub fn allocations(&self) -> usize {
        self.allocations
    }
}

/// Grows `v` to exactly `len` elements of `fill`, counting a capacity growth
/// into `allocs`.
fn reset_vec<T: Copy>(v: &mut Vec<T>, len: usize, fill: T, allocs: &mut usize) {
    if v.capacity() < len {
        *allocs += 1;
    }
    v.clear();
    v.resize(len, fill);
}

/// A precompiled evaluation plan for one circuit topology.
///
/// Compile with [`Circuit::compile_plan`]; restamp with
/// [`EvalPlan::evaluate_into`]. The plan snapshots the circuit's devices and
/// `gmin`, so it is invalidated by **any** circuit mutation — recompile
/// after adding devices or changing parameters. See the [module
/// docs](self) for the linear-baseline / nonlinear-delta split and the
/// bit-compatibility contract.
///
/// # Examples
///
/// ```
/// use exi_netlist::{Circuit, Waveform};
///
/// # fn main() -> Result<(), exi_netlist::NetlistError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let gnd = ckt.node("0");
/// ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(1.0))?;
/// ckt.add_resistor("R1", a, gnd, 1e3)?;
/// ckt.add_capacitor("C1", a, gnd, 1e-12)?;
/// // Analyze the topology once…
/// let plan = ckt.compile_plan()?;
/// let mut ws = plan.new_workspace();
/// let mut eval = plan.new_evaluation();
/// // …then restamp per state in the hot loop, allocation-free.
/// for x in [[0.0, 0.0], [1.0, -1e-3]] {
///     plan.evaluate_into(&x, &mut ws, &mut eval)?;
/// }
/// assert_eq!(ws.allocations(), 0);
/// assert!(eval.g.get(0, 0) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EvalPlan {
    n: usize,
    input_dim: usize,
    g: MatrixPlan,
    c: MatrixPlan,
    b: CsrMatrix,
    kernels: Vec<DeviceKernel>,
    nl_slots: usize,
    gmin: f64,
}

/// Records stamp pushes during compilation, mirroring
/// `devices::StampContext` with value provenance.
struct Recorder {
    g: Vec<(usize, usize, Src)>,
    c: TripletMatrix,
    b: TripletMatrix,
    next_slot: u32,
}

impl Recorder {
    fn push_g(&mut self, row: Option<usize>, col: Option<usize>, src: Src) {
        if let (Some(r), Some(c)) = (row, col) {
            // Mirror `TripletMatrix::push`: exact-zero constant stamps are
            // dropped before compression.
            if matches!(src, Src::Const(v) if v == 0.0) {
                return;
            }
            self.g.push((r, c, src));
        }
    }

    /// Allocates a slot for a dynamic cell, or `None` when the cell touches
    /// ground (the stamp would be discarded anyway).
    fn slot(&mut self, row: Option<usize>, col: Option<usize>) -> Option<u32> {
        let (row, col) = (row?, col?);
        let s = self.next_slot;
        self.next_slot += 1;
        self.g.push((row, col, Src::Slot(s)));
        Some(s)
    }

    fn push_c(&mut self, row: Option<usize>, col: Option<usize>, value: f64) {
        if let (Some(r), Some(c)) = (row, col) {
            self.c.push(r, c, value);
        }
    }

    fn push_b(&mut self, row: Option<usize>, source: usize, value: f64) {
        if let Some(r) = row {
            self.b.push(r, source, value);
        }
    }

    /// The standard two-terminal conductance stamp with a constant value,
    /// in `StampContext::stamp_conductance` push order.
    fn const_conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        self.push_g(a, a, Src::Const(g));
        self.push_g(b, b, Src::Const(g));
        self.push_g(a, b, Src::Const(-g));
        self.push_g(b, a, Src::Const(-g));
    }

    /// The standard two-terminal capacitance stamp, in
    /// `StampContext::stamp_capacitance` push order.
    fn const_capacitance(&mut self, a: Option<usize>, b: Option<usize>, c: f64) {
        self.push_c(a, a, c);
        self.push_c(b, b, c);
        self.push_c(a, b, -c);
        self.push_c(b, a, -c);
    }
}

fn unknown(node: &NodeId) -> Option<usize> {
    node.unknown()
}

impl EvalPlan {
    /// Compiles a plan for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::EmptyCircuit`] for a circuit with no
    /// unknowns.
    pub fn compile(circuit: &Circuit) -> NetlistResult<EvalPlan> {
        let n = circuit.num_unknowns();
        if n == 0 {
            return Err(NetlistError::EmptyCircuit);
        }
        let input_dim = circuit.num_sources().max(1);
        let branch_offset = circuit.num_nodes();
        let gmin = circuit.gmin();
        let mut rec = Recorder {
            g: Vec::with_capacity(8 * circuit.num_devices()),
            c: TripletMatrix::with_capacity(n, n, 4 * circuit.num_devices()),
            b: TripletMatrix::new(n, input_dim),
            next_slot: 0,
        };
        let mut kernels = Vec::with_capacity(circuit.num_devices());

        // One pass over the devices, mirroring `Device::stamp` push order
        // exactly — the bit-compatibility contract (module docs) hangs on
        // this correspondence.
        for device in circuit.devices() {
            match device {
                Device::Resistor {
                    a, b, resistance, ..
                } => {
                    let g = 1.0 / resistance;
                    rec.const_conductance(unknown(a), unknown(b), g);
                    kernels.push(DeviceKernel::Resistor {
                        a: unknown(a),
                        b: unknown(b),
                        conductance: g,
                    });
                }
                Device::Capacitor {
                    a, b, capacitance, ..
                } => {
                    rec.const_capacitance(unknown(a), unknown(b), *capacitance);
                    kernels.push(DeviceKernel::Capacitor {
                        a: unknown(a),
                        b: unknown(b),
                        capacitance: *capacitance,
                    });
                }
                Device::Inductor {
                    a,
                    b,
                    inductance,
                    branch,
                    ..
                } => {
                    let row = branch_offset + branch;
                    rec.push_g(unknown(a), Some(row), Src::Const(1.0));
                    rec.push_g(unknown(b), Some(row), Src::Const(-1.0));
                    rec.push_c(Some(row), Some(row), *inductance);
                    rec.push_g(Some(row), unknown(a), Src::Const(-1.0));
                    rec.push_g(Some(row), unknown(b), Src::Const(1.0));
                    kernels.push(DeviceKernel::Inductor {
                        a: unknown(a),
                        b: unknown(b),
                        row,
                        inductance: *inductance,
                    });
                }
                Device::VoltageSource {
                    pos,
                    neg,
                    branch,
                    source,
                    ..
                } => {
                    let row = branch_offset + branch;
                    rec.push_g(unknown(pos), Some(row), Src::Const(1.0));
                    rec.push_g(unknown(neg), Some(row), Src::Const(-1.0));
                    rec.push_g(Some(row), unknown(pos), Src::Const(1.0));
                    rec.push_g(Some(row), unknown(neg), Src::Const(-1.0));
                    rec.push_b(Some(row), *source, 1.0);
                    kernels.push(DeviceKernel::VoltageSource {
                        pos: unknown(pos),
                        neg: unknown(neg),
                        row,
                    });
                }
                Device::CurrentSource {
                    from, to, source, ..
                } => {
                    rec.push_b(unknown(to), *source, 1.0);
                    rec.push_b(unknown(from), *source, -1.0);
                    kernels.push(DeviceKernel::Inert);
                }
                Device::Diode {
                    anode,
                    cathode,
                    model,
                    ..
                } => {
                    let (a, c) = (unknown(anode), unknown(cathode));
                    let slots = [
                        rec.slot(a, a),
                        rec.slot(c, c),
                        rec.slot(a, c),
                        rec.slot(c, a),
                    ];
                    rec.const_capacitance(a, c, model.junction_capacitance);
                    kernels.push(DeviceKernel::Diode {
                        anode: a,
                        cathode: c,
                        model: model.clone(),
                        slots,
                    });
                }
                Device::Mosfet {
                    drain,
                    gate,
                    source,
                    model,
                    ..
                } => {
                    let (d, g, s) = (unknown(drain), unknown(gate), unknown(source));
                    let slots = [
                        rec.slot(d, d),
                        rec.slot(d, g),
                        rec.slot(d, s),
                        rec.slot(s, d),
                        rec.slot(s, g),
                        rec.slot(s, s),
                    ];
                    rec.const_conductance(d, s, gmin);
                    rec.const_capacitance(g, s, model.cgs);
                    rec.const_capacitance(g, d, model.cgd);
                    kernels.push(DeviceKernel::Mosfet {
                        drain: d,
                        gate: g,
                        source: s,
                        model: model.clone(),
                        slots,
                    });
                }
            }
        }

        let g = compile_matrix(n, rec.g);
        let c_fixed = rec.c.to_csr();
        let c = MatrixPlan {
            cols: n,
            max_nnz: c_fixed.nnz(),
            fixed: c_fixed,
            rows: vec![RowPlan::Fixed; n],
            dyn_entries: Vec::new(),
            max_row_entries: 0,
        };
        Ok(EvalPlan {
            n,
            input_dim,
            g,
            c,
            b: rec.b.to_csr(),
            kernels,
            nl_slots: rec.next_slot as usize,
            gmin,
        })
    }

    /// Number of MNA unknowns the plan was compiled for.
    pub fn num_unknowns(&self) -> usize {
        self.n
    }

    /// Number of entries of the input vector `u(t)` the plan's `B` matrix
    /// multiplies ([`Circuit::input_dim`]).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The constant source-incidence matrix `B`
    /// (`num_unknowns × num_sources.max(1)`), assembled once at compile
    /// time.
    pub fn input_matrix(&self) -> &CsrMatrix {
        &self.b
    }

    /// Number of nonlinear scatter slots — the matrix entries rewritten per
    /// evaluation (and the per-evaluation increment of the engines'
    /// `restamped_entries` counter). Zero for a purely linear circuit.
    pub fn nonlinear_stamp_count(&self) -> usize {
        self.nl_slots
    }

    /// The `gmin` value baked into the plan's nonlinear kernels.
    pub fn gmin(&self) -> f64 {
        self.gmin
    }

    /// Creates a workspace with every scratch buffer pre-sized for this
    /// plan, so evaluations through it never allocate.
    pub fn new_workspace(&self) -> EvalWorkspace {
        EvalWorkspace {
            slots: vec![0.0; self.nl_slots],
            scratch: Vec::with_capacity(self.g.max_row_entries.max(self.c.max_row_entries)),
            allocations: 0,
        }
    }

    /// Creates an [`Evaluation`] whose buffers are pre-sized for this plan,
    /// so the first [`EvalPlan::evaluate_into`] into it already runs
    /// allocation-free.
    pub fn new_evaluation(&self) -> Evaluation {
        Evaluation {
            c: csr_buffer(self.n, self.c.max_nnz),
            g: csr_buffer(self.n, self.g.max_nnz),
            f: Vec::with_capacity(self.n),
            q: Vec::with_capacity(self.n),
        }
    }

    /// Evaluates all devices at state `x`, restamping `out` in place, and
    /// returns the number of nonlinear entries rewritten
    /// ([`EvalPlan::nonlinear_stamp_count`]).
    ///
    /// Bit-identical to [`Circuit::evaluate_reference`] at every `x` (see
    /// the module docs for why that holds). `out`'s previous contents are
    /// irrelevant — only its buffer capacity is reused.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` does not have
    /// [`EvalPlan::num_unknowns`] entries.
    pub fn evaluate_into(
        &self,
        x: &[f64],
        ws: &mut EvalWorkspace,
        out: &mut Evaluation,
    ) -> NetlistResult<usize> {
        if x.len() != self.n {
            return Err(NetlistError::Parse {
                line: 0,
                message: format!(
                    "state vector length {} does not match {} unknowns",
                    x.len(),
                    self.n
                ),
            });
        }
        reset_vec(&mut out.f, self.n, 0.0, &mut ws.allocations);
        reset_vec(&mut out.q, self.n, 0.0, &mut ws.allocations);
        reset_vec(&mut ws.slots, self.nl_slots, 0.0, &mut ws.allocations);
        self.run_kernels(x, &mut out.f, &mut out.q, &mut ws.slots);
        let slots = std::mem::take(&mut ws.slots);
        self.g.assemble(
            self.n,
            &slots,
            &mut ws.scratch,
            &mut out.g,
            &mut ws.allocations,
        );
        self.c.assemble(
            self.n,
            &slots,
            &mut ws.scratch,
            &mut out.c,
            &mut ws.allocations,
        );
        ws.slots = slots;
        Ok(self.nl_slots)
    }

    /// Allocating convenience around [`EvalPlan::evaluate_into`] for tests,
    /// examples and other cold paths.
    ///
    /// # Errors
    ///
    /// As [`EvalPlan::evaluate_into`].
    pub fn evaluate(&self, x: &[f64]) -> NetlistResult<Evaluation> {
        let mut ws = self.new_workspace();
        let mut out = self.new_evaluation();
        self.evaluate_into(x, &mut ws, &mut out)?;
        Ok(out)
    }

    /// Evaluates all devices at `K` lane states in one call, restamping one
    /// [`Evaluation`] per lane.
    ///
    /// This is the value-lane entry point used by the batched sweep engine:
    /// one compiled plan (one topology analysis) serves every lane, and each
    /// lane's restamp is **bit-identical** to a standalone
    /// [`EvalPlan::evaluate_into`] at the same state — the lanes share the
    /// plan and the scratch workspace but never each other's arithmetic.
    /// Returns the number of nonlinear entries rewritten per lane.
    ///
    /// # Errors
    ///
    /// Returns an error if `xs` and `outs` disagree in length or any state
    /// vector does not have [`EvalPlan::num_unknowns`] entries.
    pub fn evaluate_lanes_into(
        &self,
        xs: &[&[f64]],
        ws: &mut EvalWorkspace,
        outs: &mut [Evaluation],
    ) -> NetlistResult<usize> {
        if xs.len() != outs.len() {
            return Err(NetlistError::Parse {
                line: 0,
                message: format!(
                    "{} lane states supplied for {} lane evaluations",
                    xs.len(),
                    outs.len()
                ),
            });
        }
        for (x, out) in xs.iter().zip(outs.iter_mut()) {
            self.evaluate_into(x, ws, out)?;
        }
        Ok(self.nl_slots)
    }

    /// Runs the per-device kernels: `f`/`q` accumulation in device order
    /// (matching the legacy stamp order exactly) and the nonlinear slot
    /// writes.
    fn run_kernels(&self, x: &[f64], f: &mut [f64], q: &mut [f64], slots: &mut [f64]) {
        let v = |idx: Option<usize>| idx.map_or(0.0, |i| x[i]);
        let add = |buf: &mut [f64], idx: Option<usize>, val: f64| {
            if let Some(i) = idx {
                buf[i] += val;
            }
        };
        let write = |slots: &mut [f64], slot: Option<u32>, val: f64| {
            if let Some(s) = slot {
                slots[s as usize] = val;
            }
        };
        for kernel in &self.kernels {
            match kernel {
                DeviceKernel::Resistor { a, b, conductance } => {
                    let i = conductance * (v(*a) - v(*b));
                    add(f, *a, i);
                    add(f, *b, -i);
                }
                DeviceKernel::Capacitor { a, b, capacitance } => {
                    let qc = capacitance * (v(*a) - v(*b));
                    add(q, *a, qc);
                    add(q, *b, -qc);
                }
                DeviceKernel::Inductor {
                    a,
                    b,
                    row,
                    inductance,
                } => {
                    let il = x[*row];
                    let (va, vb) = (v(*a), v(*b));
                    add(f, *a, il);
                    add(f, *b, -il);
                    q[*row] += inductance * il;
                    f[*row] += -(va - vb);
                }
                DeviceKernel::VoltageSource { pos, neg, row } => {
                    let i = x[*row];
                    let (vp, vn) = (v(*pos), v(*neg));
                    add(f, *pos, i);
                    add(f, *neg, -i);
                    f[*row] += vp - vn;
                }
                DeviceKernel::Inert => {}
                DeviceKernel::Diode {
                    anode,
                    cathode,
                    model,
                    slots: sl,
                } => {
                    let vd = v(*anode) - v(*cathode);
                    let op = model.evaluate(vd);
                    add(f, *anode, op.current);
                    add(f, *cathode, -op.current);
                    let g = op.conductance + self.gmin;
                    write(slots, sl[0], g);
                    write(slots, sl[1], g);
                    write(slots, sl[2], -g);
                    write(slots, sl[3], -g);
                    let qd = model.junction_capacitance * vd;
                    add(q, *anode, qd);
                    add(q, *cathode, -qd);
                }
                DeviceKernel::Mosfet {
                    drain,
                    gate,
                    source,
                    model,
                    slots: sl,
                } => {
                    let (vd, vg, vs) = (v(*drain), v(*gate), v(*source));
                    let op = model.evaluate(vg - vs, vd - vs);
                    add(f, *drain, op.ids);
                    add(f, *source, -op.ids);
                    let gm = op.gm;
                    let gds = op.gds;
                    write(slots, sl[0], gds);
                    write(slots, sl[1], gm);
                    write(slots, sl[2], -(gm + gds));
                    write(slots, sl[3], -gds);
                    write(slots, sl[4], -gm);
                    write(slots, sl[5], gm + gds);
                    let qgs = model.cgs * (vg - vs);
                    add(q, *gate, qgs);
                    add(q, *source, -qgs);
                    let qgd = model.cgd * (vg - vd);
                    add(q, *gate, qgd);
                    add(q, *drain, -qgd);
                }
            }
        }
    }
}

/// Partitions the recorded pushes of one matrix into the fixed baseline and
/// the per-row dynamic entry lists.
fn compile_matrix(n: usize, pushes: Vec<(usize, usize, Src)>) -> MatrixPlan {
    let mut dynamic = vec![false; n];
    for (r, _, src) in &pushes {
        if matches!(src, Src::Slot(_)) {
            dynamic[*r] = true;
        }
    }
    // Baseline rows go through the legacy COO→CSR pipeline at compile time
    // (same code, same data, same bits); dynamic rows keep their raw pushes
    // in global push order.
    let mut fixed = TripletMatrix::new(n, n);
    let mut dyn_lists: Vec<Vec<DynEntry>> = vec![Vec::new(); n];
    for (r, c, src) in pushes {
        if dynamic[r] {
            match src {
                Src::Const(v) => {
                    // `TripletMatrix::push` filters exact zeros; constants
                    // are filtered here, slot values at evaluation time.
                    if v != 0.0 {
                        dyn_lists[r].push(DynEntry {
                            col: c,
                            src: Src::Const(v),
                        });
                    }
                }
                src => dyn_lists[r].push(DynEntry { col: c, src }),
            }
        } else if let Src::Const(v) = src {
            fixed.push(r, c, v);
        }
    }
    let fixed = fixed.to_csr();
    let mut rows = Vec::with_capacity(n);
    let mut dyn_entries = Vec::new();
    let mut max_row_entries = 0usize;
    for (r, list) in dyn_lists.into_iter().enumerate() {
        if dynamic[r] {
            let start = dyn_entries.len() as u32;
            max_row_entries = max_row_entries.max(list.len());
            dyn_entries.extend(list);
            rows.push(RowPlan::Dynamic {
                start,
                end: dyn_entries.len() as u32,
            });
        } else {
            rows.push(RowPlan::Fixed);
        }
    }
    MatrixPlan {
        cols: n,
        max_nnz: fixed.nnz() + dyn_entries.len(),
        fixed,
        rows,
        dyn_entries,
        max_row_entries,
    }
}

/// An empty CSR holder whose buffers are pre-sized for `rows`/`nnz`.
fn csr_buffer(rows: usize, nnz: usize) -> CsrMatrix {
    let mut indptr = Vec::with_capacity(rows + 1);
    indptr.push(0);
    CsrMatrix::from_parts_unchecked(
        0,
        0,
        indptr,
        Vec::with_capacity(nnz),
        Vec::with_capacity(nnz),
    )
}

impl MatrixPlan {
    /// Rebuilds the matrix inside `out`'s buffers: baseline rows by flat
    /// copies, dynamic rows through the legacy zero-filter / sort / run-sum
    /// pipeline over `scratch`.
    fn assemble(
        &self,
        n: usize,
        slots: &[f64],
        scratch: &mut Vec<(usize, f64)>,
        out: &mut CsrMatrix,
        allocs: &mut usize,
    ) {
        let (mut indptr, mut indices, mut values) = out.take_parts();
        if indptr.capacity() < n + 1 {
            *allocs += 1;
        }
        if indices.capacity() < self.max_nnz || values.capacity() < self.max_nnz {
            *allocs += 1;
        }
        indptr.clear();
        indices.clear();
        indices.reserve(self.max_nnz);
        values.clear();
        values.reserve(self.max_nnz);
        if self.dyn_entries.is_empty() {
            // Fully linear matrix: three flat copies restore the baseline.
            indptr.extend_from_slice(self.fixed.indptr());
            indices.extend_from_slice(self.fixed.indices());
            values.extend_from_slice(self.fixed.values());
        } else {
            if scratch.capacity() < self.max_row_entries {
                *allocs += 1;
                scratch.reserve(self.max_row_entries);
            }
            indptr.reserve(n + 1);
            indptr.push(0);
            let fixed_indptr = self.fixed.indptr();
            for (r, plan) in self.rows.iter().enumerate() {
                match plan {
                    RowPlan::Fixed => {
                        let s = fixed_indptr[r];
                        let e = fixed_indptr[r + 1];
                        indices.extend_from_slice(&self.fixed.indices()[s..e]);
                        values.extend_from_slice(&self.fixed.values()[s..e]);
                    }
                    RowPlan::Dynamic { start, end } => {
                        scratch.clear();
                        for entry in &self.dyn_entries[*start as usize..*end as usize] {
                            let v = match entry.src {
                                Src::Const(v) => v,
                                Src::Slot(s) => slots[s as usize],
                            };
                            if v != 0.0 {
                                scratch.push((entry.col, v));
                            }
                        }
                        // The exact `CsrMatrix::from_triplets` row pipeline:
                        // same sort call on the same element type, then
                        // run-summation with exact-zero cell dropping.
                        scratch.sort_unstable_by_key(|&(c, _)| c);
                        let mut i = 0;
                        while i < scratch.len() {
                            let col = scratch[i].0;
                            let mut sum = 0.0;
                            while i < scratch.len() && scratch[i].0 == col {
                                sum += scratch[i].1;
                                i += 1;
                            }
                            if sum != 0.0 {
                                indices.push(col);
                                values.push(sum);
                            }
                        }
                    }
                }
                indptr.push(indices.len());
            }
        }
        *out = CsrMatrix::from_parts_unchecked(n, self.cols, indptr, indices, values);
    }
}

/// A structural+parametric fingerprint of a circuit, suitable as a cache key
/// for sharing compiled [`EvalPlan`]s across same-structure jobs (see
/// `exi_sim::PlanCache`).
///
/// Two circuits map to the same key exactly when they compile to
/// interchangeable plans: same unknown layout, same device sequence with the
/// same terminals and parameter values, same `gmin`. Device *names* and
/// source *waveforms* are deliberately excluded — neither enters the plan
/// (waveforms are evaluated separately via
/// [`Circuit::input_vector`](crate::Circuit::input_vector)).
pub fn circuit_fingerprint(circuit: &Circuit) -> Vec<u8> {
    let mut key = Vec::with_capacity(16 + 40 * circuit.num_devices());
    let push_u64 = |key: &mut Vec<u8>, v: u64| key.extend_from_slice(&v.to_le_bytes());
    push_u64(&mut key, circuit.num_unknowns() as u64);
    push_u64(&mut key, circuit.num_nodes() as u64);
    push_u64(&mut key, circuit.gmin().to_bits());
    let node = |n: &NodeId| n.unknown().map_or(u64::MAX, |u| u as u64);
    for device in circuit.devices() {
        match device {
            Device::Resistor {
                a, b, resistance, ..
            } => {
                key.push(1);
                push_u64(&mut key, node(a));
                push_u64(&mut key, node(b));
                push_u64(&mut key, resistance.to_bits());
            }
            Device::Capacitor {
                a, b, capacitance, ..
            } => {
                key.push(2);
                push_u64(&mut key, node(a));
                push_u64(&mut key, node(b));
                push_u64(&mut key, capacitance.to_bits());
            }
            Device::Inductor {
                a,
                b,
                inductance,
                branch,
                ..
            } => {
                key.push(3);
                push_u64(&mut key, node(a));
                push_u64(&mut key, node(b));
                push_u64(&mut key, *branch as u64);
                push_u64(&mut key, inductance.to_bits());
            }
            Device::VoltageSource {
                pos,
                neg,
                branch,
                source,
                ..
            } => {
                key.push(4);
                push_u64(&mut key, node(pos));
                push_u64(&mut key, node(neg));
                push_u64(&mut key, *branch as u64);
                push_u64(&mut key, *source as u64);
            }
            Device::CurrentSource {
                from, to, source, ..
            } => {
                key.push(5);
                push_u64(&mut key, node(from));
                push_u64(&mut key, node(to));
                push_u64(&mut key, *source as u64);
            }
            Device::Diode {
                anode,
                cathode,
                model,
                ..
            } => {
                key.push(6);
                push_u64(&mut key, node(anode));
                push_u64(&mut key, node(cathode));
                push_u64(&mut key, model.saturation_current.to_bits());
                push_u64(&mut key, model.emission_coefficient.to_bits());
                push_u64(&mut key, model.thermal_voltage.to_bits());
                push_u64(&mut key, model.junction_capacitance.to_bits());
            }
            Device::Mosfet {
                drain,
                gate,
                source,
                model,
                ..
            } => {
                key.push(7);
                push_u64(&mut key, node(drain));
                push_u64(&mut key, node(gate));
                push_u64(&mut key, node(source));
                key.push(match model.polarity {
                    crate::devices::MosfetPolarity::Nmos => 0,
                    crate::devices::MosfetPolarity::Pmos => 1,
                });
                push_u64(&mut key, model.threshold.to_bits());
                push_u64(&mut key, model.transconductance.to_bits());
                push_u64(&mut key, model.lambda.to_bits());
                push_u64(&mut key, model.width.to_bits());
                push_u64(&mut key, model.length.to_bits());
                push_u64(&mut key, model.cgs.to_bits());
                push_u64(&mut key, model.cgd.to_bits());
            }
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    fn mixed_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        let mid = ckt.node("mid");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("Vdd", vdd, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_voltage_source("Vin", inp, gnd, Waveform::Dc(0.4))
            .unwrap();
        ckt.add_mosfet("MN", out, inp, gnd, MosfetModel::nmos())
            .unwrap();
        ckt.add_mosfet("MP", out, inp, vdd, MosfetModel::pmos())
            .unwrap();
        ckt.add_resistor("R1", out, mid, 2e3).unwrap();
        ckt.add_capacitor("C1", mid, gnd, 1e-13).unwrap();
        ckt.add_inductor("L1", mid, gnd, 1e-9).unwrap();
        ckt.add_diode("D1", mid, gnd, DiodeModel::default())
            .unwrap();
        ckt.add_current_source("I1", gnd, mid, Waveform::Dc(1e-4))
            .unwrap();
        ckt
    }

    fn assert_eval_bits_equal(a: &Evaluation, b: &Evaluation) {
        assert_eq!(a.g.indptr(), b.g.indptr());
        assert_eq!(a.g.indices(), b.g.indices());
        assert_eq!(a.c.indptr(), b.c.indptr());
        assert_eq!(a.c.indices(), b.c.indices());
        for (x, y) in a.g.values().iter().zip(b.g.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.c.values().iter().zip(b.c.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.f.iter().zip(&b.f) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.q.iter().zip(&b.q) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn plan_matches_legacy_on_a_mixed_circuit() {
        let ckt = mixed_circuit();
        let plan = ckt.compile_plan().unwrap();
        let n = ckt.num_unknowns();
        let mut ws = plan.new_workspace();
        let mut ev = plan.new_evaluation();
        // Several states, including ones that drive the MOSFETs through
        // cut-off (gm == gds == 0, the pattern-shrinking case).
        let states: Vec<Vec<f64>> = vec![
            vec![0.0; n],
            (0..n).map(|i| 0.1 * i as f64 - 0.2).collect(),
            (0..n)
                .map(|i| ((i * 7 + 3) % 5) as f64 * 0.3 - 0.6)
                .collect(),
        ];
        for x in &states {
            let restamped = plan.evaluate_into(x, &mut ws, &mut ev).unwrap();
            assert_eq!(restamped, plan.nonlinear_stamp_count());
            let legacy = ckt.evaluate_reference(x).unwrap();
            assert_eval_bits_equal(&ev, &legacy);
        }
        // Buffer reuse across different states leaves no stale entries and
        // never allocates after warm-up.
        assert_eq!(ws.allocations(), 0);
        assert_eq!(plan.input_matrix(), &ckt.input_matrix_reference().unwrap());
    }

    #[test]
    fn linear_circuit_is_fully_baseline() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V", a, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R", a, b, 1e3).unwrap();
        ckt.add_capacitor("C", b, gnd, 1e-12).unwrap();
        let plan = ckt.compile_plan().unwrap();
        assert_eq!(plan.nonlinear_stamp_count(), 0);
        let x = vec![0.7, 0.3, -1e-4];
        let ev = plan.evaluate(&x).unwrap();
        let legacy = ckt.evaluate_reference(&x).unwrap();
        assert_eval_bits_equal(&ev, &legacy);
    }

    #[test]
    fn compile_rejects_empty_circuits() {
        let ckt = Circuit::new();
        assert!(matches!(
            EvalPlan::compile(&ckt),
            Err(NetlistError::EmptyCircuit)
        ));
    }

    #[test]
    fn evaluate_into_validates_state_length() {
        let ckt = mixed_circuit();
        let plan = ckt.compile_plan().unwrap();
        let mut ws = plan.new_workspace();
        let mut ev = plan.new_evaluation();
        assert!(matches!(
            plan.evaluate_into(&[0.0], &mut ws, &mut ev),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn evaluate_lanes_into_matches_per_lane_scalar_evaluations() {
        let ckt = mixed_circuit();
        let plan = ckt.compile_plan().unwrap();
        let n = plan.num_unknowns();
        let states: Vec<Vec<f64>> = (0..4)
            .map(|lane| (0..n).map(|i| 0.1 * (i + lane) as f64 - 0.15).collect())
            .collect();
        let refs: Vec<&[f64]> = states.iter().map(|s| s.as_slice()).collect();
        let mut ws = plan.new_workspace();
        let mut outs: Vec<_> = (0..4).map(|_| plan.new_evaluation()).collect();
        let stamped = plan.evaluate_lanes_into(&refs, &mut ws, &mut outs).unwrap();
        assert_eq!(stamped, plan.nonlinear_stamp_count());
        for (x, lane_ev) in states.iter().zip(outs.iter()) {
            let scalar = plan.evaluate(x).unwrap();
            assert_eq!(scalar.g.values(), lane_ev.g.values());
            assert_eq!(scalar.c.values(), lane_ev.c.values());
            assert_eq!(scalar.f, lane_ev.f);
            assert_eq!(scalar.q, lane_ev.q);
        }
        // Length disagreement is rejected.
        assert!(plan
            .evaluate_lanes_into(&refs[..2], &mut ws, &mut outs)
            .is_err());
    }

    #[test]
    fn fingerprints_ignore_names_and_waveforms_but_not_values() {
        let base = mixed_circuit();
        let mut renamed = Circuit::new();
        {
            let vdd = renamed.node("vdd");
            let inp = renamed.node("in");
            let out = renamed.node("out");
            let mid = renamed.node("mid");
            let gnd = renamed.node("0");
            renamed
                .add_voltage_source("Vsupply", vdd, gnd, Waveform::Dc(3.3))
                .unwrap();
            renamed
                .add_voltage_source("Vstim", inp, gnd, Waveform::Dc(0.0))
                .unwrap();
            renamed
                .add_mosfet("M_a", out, inp, gnd, MosfetModel::nmos())
                .unwrap();
            renamed
                .add_mosfet("M_b", out, inp, vdd, MosfetModel::pmos())
                .unwrap();
            renamed.add_resistor("Rx", out, mid, 2e3).unwrap();
            renamed.add_capacitor("Cx", mid, gnd, 1e-13).unwrap();
            renamed.add_inductor("Lx", mid, gnd, 1e-9).unwrap();
            renamed
                .add_diode("Dx", mid, gnd, DiodeModel::default())
                .unwrap();
            renamed
                .add_current_source("Ix", gnd, mid, Waveform::Dc(5.0))
                .unwrap();
        }
        assert_eq!(circuit_fingerprint(&base), circuit_fingerprint(&renamed));
        // A changed parameter value changes the key.
        let mut other = mixed_circuit();
        other.set_gmin(1e-9);
        assert_ne!(circuit_fingerprint(&base), circuit_fingerprint(&other));
    }
}
