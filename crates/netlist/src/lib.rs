//! # exi-netlist
//!
//! Circuit netlist representation, device models, MNA stamping, a small
//! SPICE-like parser and synthetic workload generators for the `exi-sim`
//! exponential-integrator circuit simulator (reproduction of Zhuang et al.,
//! DAC 2015).
//!
//! The crate produces everything the integrators in `exi-sim` consume: at any
//! state `x` a [`Circuit`] can be evaluated into the matrices and vectors of
//! the nonlinear MNA system
//!
//! ```text
//! C(x)·dx/dt + f(x) = B·u(t)
//! ```
//!
//! (paper Eq. 1), plus the constant incidence matrix `B`, the stimulus vector
//! `u(t)` and the waveform breakpoints used for step-size alignment.
//!
//! # Examples
//!
//! Build an RC low-pass filter programmatically:
//!
//! ```
//! use exi_netlist::{Circuit, Waveform};
//!
//! # fn main() -> Result<(), exi_netlist::NetlistError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! let gnd = ckt.node("0");
//! ckt.add_voltage_source("Vin", vin, gnd, Waveform::single_pulse(0.0, 1.0, 0.0, 1e-11, 1e-11, 5e-9))?;
//! ckt.add_resistor("R1", vin, out, 1e3)?;
//! ckt.add_capacitor("C1", out, gnd, 1e-12)?;
//! // Compile the stamping plan once per topology, then restamp per state.
//! let plan = ckt.compile_plan()?;
//! let eval = plan.evaluate(&vec![0.0; ckt.num_unknowns()])?;
//! assert_eq!(eval.g.rows(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! Or parse a SPICE deck — subcircuits, `.param` substitution and analysis
//! cards included — with [`deck::parse_deck`] / [`deck::parse_deck_file`]
//! (the plain [`parse_netlist`] returns just the flattened [`Circuit`]):
//!
//! ```
//! use exi_netlist::deck::parse_deck;
//!
//! # fn main() -> Result<(), exi_netlist::NetlistError> {
//! let deck = parse_deck(
//!     ".param c=1p\n\
//!      Vin in 0 PULSE(0 1 0 1n 1n 5n)\n\
//!      R1 in out 1k\n\
//!      C1 out 0 {c}\n\
//!      .tran 1p 5n\n\
//!      .print v(out)\n",
//! )?;
//! assert_eq!(deck.circuit.num_unknowns(), 3);
//! assert_eq!(deck.analyses.len(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod circuit;
pub mod deck;
pub mod devices;
pub mod error;
pub mod generators;
pub mod node;
pub mod parser;
pub mod plan;
pub mod waveform;

pub use circuit::{Circuit, Evaluation};
pub use deck::{
    parse_deck, parse_deck_file, parse_deck_file_with_params, parse_deck_with_params, Analysis,
    Deck,
};
pub use devices::{Device, DiodeModel, MosfetModel, MosfetPolarity};
pub use error::{NetlistError, NetlistResult};
pub use node::NodeId;
pub use parser::{parse_netlist, parse_value};
pub use plan::{circuit_fingerprint, EvalPlan, EvalWorkspace};
pub use waveform::Waveform;
