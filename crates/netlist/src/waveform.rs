//! Independent-source waveforms.
//!
//! The ER formulation assumes piecewise-linear excitations within a step
//! (paper Eq. 13), so every waveform here is evaluated point-wise and the
//! integrators sample it at `t_k` and `t_{k+1}`. [`Waveform::breakpoints`]
//! exposes the corner times so the transient driver can align steps with
//! input edges — the same trick every SPICE uses to avoid smearing sharp
//! pulses.

/// A time-dependent source value.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Periodic trapezoidal pulse, the workhorse of digital stimuli.
    Pulse {
        /// Initial (low) value.
        v1: f64,
        /// Pulsed (high) value.
        v2: f64,
        /// Delay before the first rising edge.
        delay: f64,
        /// Rise time (0 is replaced by a 1 ps minimum).
        rise: f64,
        /// Fall time (0 is replaced by a 1 ps minimum).
        fall: f64,
        /// Pulse width (time spent at `v2`).
        width: f64,
        /// Period of repetition; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piece-wise linear waveform given as `(time, value)` corner points.
    Pwl(Vec<(f64, f64)>),
    /// Damped sinusoid `offset + amplitude * sin(2π f (t - delay)) * e^{-damping (t-delay)}`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency in Hz.
        frequency: f64,
        /// Start delay.
        delay: f64,
        /// Damping factor in 1/s.
        damping: f64,
    },
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::Dc(0.0)
    }
}

/// Minimum rise/fall time substituted for zero to keep waveforms piecewise
/// linear with finite slope (1 ps).
const MIN_EDGE: f64 = 1e-12;

impl Waveform {
    /// Evaluates the waveform at time `t`.
    ///
    /// # Examples
    ///
    /// ```
    /// use exi_netlist::Waveform;
    ///
    /// let w = Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 1.0)]);
    /// assert_eq!(w.value(0.5e-9), 0.5);
    /// assert_eq!(w.value(2e-9), 1.0);
    /// ```
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let rise = rise.max(MIN_EDGE);
                let fall = fall.max(MIN_EDGE);
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                if tau < rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().map(|&(_, v)| v).unwrap_or(0.0)
            }
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
                delay,
                damping,
            } => {
                if t < *delay {
                    *offset
                } else {
                    let tau = t - delay;
                    offset
                        + amplitude
                            * (2.0 * std::f64::consts::PI * frequency * tau).sin()
                            * (-damping * tau).exp()
                }
            }
        }
    }

    /// Times at which the waveform has a slope discontinuity within `[0, t_end]`.
    ///
    /// The transient engines clamp their step size so they never step across a
    /// breakpoint, which keeps the piecewise-linear assumption of Eq. (13)
    /// exact.
    pub fn breakpoints(&self, t_end: f64) -> Vec<f64> {
        let mut out = Vec::new();
        match self {
            Waveform::Dc(_) => {}
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let rise = rise.max(MIN_EDGE);
                let fall = fall.max(MIN_EDGE);
                let cycle = [0.0, rise, rise + width, rise + width + fall];
                let mut base = *delay;
                loop {
                    for c in cycle {
                        let t = base + c;
                        if t <= t_end {
                            out.push(t);
                        }
                    }
                    if !(period.is_finite() && *period > 0.0) {
                        break;
                    }
                    base += period;
                    if base > t_end {
                        break;
                    }
                }
            }
            Waveform::Pwl(points) => {
                out.extend(
                    points
                        .iter()
                        .map(|&(t, _)| t)
                        .filter(|&t| t >= 0.0 && t <= t_end),
                );
            }
            // A sinusoid is smooth: only its start is a breakpoint.
            Waveform::Sine { delay, .. } => {
                if *delay > 0.0 && *delay <= t_end {
                    out.push(*delay);
                }
            }
        }
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        out.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
        out
    }

    /// Convenience constructor for a single (non-repeating) pulse.
    pub fn single_pulse(v1: f64, v2: f64, delay: f64, rise: f64, fall: f64, width: f64) -> Self {
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period: f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(1.8);
        assert_eq!(w.value(0.0), 1.8);
        assert_eq!(w.value(1.0), 1.8);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 1e-9,
            period: f64::INFINITY,
        };
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(1.05e-9) - 0.5).abs() < 1e-12);
        assert_eq!(w.value(1.5e-9), 1.0);
        assert!((w.value(2.15e-9) - 0.5).abs() < 1e-9);
        assert_eq!(w.value(5e-9), 0.0);
        let bp = w.breakpoints(5e-9);
        assert_eq!(bp.len(), 4);
        assert!((bp[0] - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn periodic_pulse_repeats() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-10,
            fall: 1e-10,
            width: 4e-10,
            period: 2e-9,
        };
        assert_eq!(w.value(3e-10), 1.0);
        assert_eq!(w.value(2e-9 + 3e-10), 1.0);
        assert_eq!(w.value(1.5e-9), 0.0);
        let bp = w.breakpoints(4e-9);
        assert!(bp.len() >= 8);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, -2.0)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert_eq!(w.value(0.5), 1.0);
        assert_eq!(w.value(1.5), 0.0);
        assert_eq!(w.value(3.0), -2.0);
        assert_eq!(w.breakpoints(10.0), vec![0.0, 1.0, 2.0]);
        assert_eq!(Waveform::Pwl(vec![]).value(1.0), 0.0);
    }

    #[test]
    fn sine_value() {
        let w = Waveform::Sine {
            offset: 1.0,
            amplitude: 0.5,
            frequency: 1.0,
            delay: 0.0,
            damping: 0.0,
        };
        assert!((w.value(0.25) - 1.5).abs() < 1e-12);
        assert!((w.value(0.0) - 1.0).abs() < 1e-12);
        let wd = Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 1.0,
            delay: 0.5,
            damping: 0.0,
        };
        assert_eq!(wd.value(0.25), 0.0);
        assert_eq!(wd.breakpoints(1.0), vec![0.5]);
    }

    #[test]
    fn single_pulse_constructor() {
        let w = Waveform::single_pulse(0.0, 1.2, 0.0, 1e-11, 1e-11, 1e-9);
        assert_eq!(w.value(0.5e-9), 1.2);
        assert_eq!(w.value(5e-9), 0.0);
    }

    #[test]
    fn default_is_zero_dc() {
        assert_eq!(Waveform::default().value(1.0), 0.0);
    }
}
