//! Property-based tests for the matrix exponential and Krylov MEVP kernels.

// Entry-wise comparisons against references index several vectors with one
// counter; iterator chains would obscure the formulas under test.
#![allow(clippy::needless_range_loop)]

use exi_krylov::{expm, mevp_invert_krylov, phi_matrices, phi_scalar, MevpOptions};
use exi_sparse::{DenseMatrix, SparseLu, TripletMatrix};
use proptest::prelude::*;

/// Strategy: small stable dense matrices (diagonally dominant with negative
/// diagonal), for which the exponential is well behaved.
fn stable_dense(max_n: usize) -> impl Strategy<Value = DenseMatrix> {
    (1usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec(-0.5f64..0.5f64, n * n).prop_map(move |vals| {
            let mut m = DenseMatrix::from_vec(n, n, vals);
            for i in 0..n {
                let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
                m.set(i, i, -(row_sum + 0.5));
            }
            m
        })
    })
}

/// Strategy: a stable RC-like sparse pair (C diagonal positive, G tridiagonal
/// diagonally dominant) and a start vector.
fn rc_pair(max_n: usize) -> impl Strategy<Value = (usize, Vec<f64>, Vec<f64>, Vec<f64>)> {
    (2usize..max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0.1f64..2.0, n),
            proptest::collection::vec(0.1f64..1.0, n - 1),
            proptest::collection::vec(-1.0f64..1.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// exp(A)·exp(−A) = I for stable matrices.
    #[test]
    fn expm_inverse_identity(a in stable_dense(6)) {
        let e_pos = expm(&a).expect("expm");
        let e_neg = expm(&a.scale(-1.0)).expect("expm");
        let prod = e_pos.matmul(&e_neg);
        let n = a.rows();
        for i in 0..n {
            for j in 0..n {
                let expected = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod.get(i, j) - expected).abs() < 1e-8);
            }
        }
    }

    /// The φ recurrence  z·φ_{k+1}(z) = φ_k(z) − 1/k!  holds for matrices:
    /// A·φ₁(A) = e^A − I and A·φ₂(A) = φ₁(A) − I.
    #[test]
    fn phi_recurrence_holds(a in stable_dense(5)) {
        let phis = phi_matrices(&a, 2).expect("phi");
        let n = a.rows();
        let ident = DenseMatrix::identity(n);
        let lhs1 = a.matmul(&phis[1]);
        let rhs1 = phis[0].sub(&ident);
        let lhs2 = a.matmul(&phis[2]);
        let rhs2 = phis[1].sub(&ident);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((lhs1.get(i, j) - rhs1.get(i, j)).abs() < 1e-9);
                prop_assert!((lhs2.get(i, j) - rhs2.get(i, j)).abs() < 1e-9);
            }
        }
    }

    /// Scalar φ functions agree with their 1×1 matrix counterparts.
    #[test]
    fn scalar_phi_matches_matrix_phi(z in -20.0f64..3.0) {
        let a = DenseMatrix::from_rows(&[&[z]]);
        let phis = phi_matrices(&a, 2).expect("phi");
        for k in 0..=2usize {
            let expected = phi_scalar(k, z);
            let got = phis[k].get(0, 0);
            let scale = expected.abs().max(1.0);
            prop_assert!(((got - expected) / scale).abs() < 1e-8);
        }
    }

    /// The invert-Krylov MEVP matches the exact diagonal solution on RC pairs
    /// where C is diagonal and G is SPD tridiagonal, for any step size.
    #[test]
    fn invert_krylov_matches_dense_reference((n, cdiag, goff, v) in rc_pair(8), h in 1e-3f64..1.0) {
        // Build C (diagonal) and G (tridiagonal, diagonally dominant).
        let mut ct = TripletMatrix::new(n, n);
        let mut gt = TripletMatrix::new(n, n);
        for i in 0..n {
            ct.push(i, i, cdiag[i]);
            let mut diag = 1.0;
            if i > 0 {
                gt.push(i, i - 1, -goff[i - 1]);
                diag += goff[i - 1];
            }
            if i + 1 < n {
                gt.push(i, i + 1, -goff[i]);
                diag += goff[i];
            }
            gt.push(i, i, diag);
        }
        let c = ct.to_csr();
        let g = gt.to_csr();
        // Dense reference: e^{-h C^{-1} G} v via expm.
        let mut j_dense = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                j_dense.set(i, k, -g.get(i, k) / cdiag[i] * h);
            }
        }
        let reference = expm(&j_dense).expect("dense expm").matvec(&v);
        let g_lu = SparseLu::factorize(&g).expect("lu");
        let opts = MevpOptions { tolerance: 1e-10, ..MevpOptions::default() };
        prop_assume!(v.iter().any(|x| x.abs() > 1e-6));
        let out = mevp_invert_krylov(&c, &g, &g_lu, &v, h, &opts).expect("mevp");
        for i in 0..n {
            prop_assert!((out.mevp[i] - reference[i]).abs() < 1e-6,
                "entry {i}: {} vs {}", out.mevp[i], reference[i]);
        }
    }

    /// Scaling invariance: evaluating the same decomposition at h and h/2 is
    /// consistent with building a fresh subspace at h/2.
    #[test]
    fn decomposition_rescaling_is_consistent((n, cdiag, goff, v) in rc_pair(8), h in 1e-2f64..1.0) {
        let mut ct = TripletMatrix::new(n, n);
        let mut gt = TripletMatrix::new(n, n);
        for i in 0..n {
            ct.push(i, i, cdiag[i]);
            let mut diag = 1.0;
            if i > 0 { gt.push(i, i - 1, -goff[i - 1]); diag += goff[i - 1]; }
            if i + 1 < n { gt.push(i, i + 1, -goff[i]); diag += goff[i]; }
            gt.push(i, i, diag);
        }
        let c = ct.to_csr();
        let g = gt.to_csr();
        let g_lu = SparseLu::factorize(&g).expect("lu");
        prop_assume!(v.iter().any(|x| x.abs() > 1e-6));
        let opts = MevpOptions { tolerance: 1e-10, ..MevpOptions::default() };
        let full = mevp_invert_krylov(&c, &g, &g_lu, &v, h, &opts).expect("mevp at h");
        let rescaled = full.decomposition.eval_expv(h / 2.0).expect("rescale");
        let fresh = mevp_invert_krylov(&c, &g, &g_lu, &v, h / 2.0, &opts).expect("mevp at h/2");
        for i in 0..n {
            prop_assert!((rescaled[i] - fresh.mevp[i]).abs() < 1e-6);
        }
    }
}
