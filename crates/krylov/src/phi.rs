//! The φ-functions of exponential integrators.
//!
//! The exponential Rosenbrock–Euler method (paper Eq. 8–9) is written in
//! terms of
//!
//! ```text
//! φ0(z) = e^z,   φ1(z) = (e^z - 1)/z,   φ2(z) = (e^z - 1 - z)/z²
//! ```
//!
//! generalized to matrix arguments. For a dense matrix `A` the whole family
//! `φ0..φp` is obtained from a single exponential of the augmented matrix
//!
//! ```text
//!        ┌ A  I  0 ┐                      ┌ e^A  φ1(A)  φ2(A) ┐
//!  W  =  │ 0  0  I │   with   exp(W)  =   │  0     I      I   │   (p = 2)
//!        └ 0  0  0 ┘                      └  0     0      I   ┘
//! ```
//!
//! whose first block row contains every φ-matrix (Sidje's augmented-matrix
//! trick). This keeps the small dense kernel to a single, well-tested code
//! path.

use exi_sparse::DenseMatrix;

use crate::error::{KrylovError, KrylovResult};
use crate::expm::expm;

/// Largest φ order supported by [`phi_matrices`].
pub const MAX_PHI_ORDER: usize = 4;

/// Computes the matrices `[φ0(A), φ1(A), …, φ_order(A)]`.
///
/// # Errors
///
/// * [`KrylovError::UnsupportedPhiOrder`] if `order > MAX_PHI_ORDER`.
/// * Errors from [`expm`] if `a` is not square.
///
/// # Examples
///
/// ```
/// use exi_sparse::DenseMatrix;
/// use exi_krylov::phi_matrices;
///
/// # fn main() -> Result<(), exi_krylov::KrylovError> {
/// let a = DenseMatrix::from_rows(&[&[0.0]]);
/// let phis = phi_matrices(&a, 2)?;
/// // phi1(0) = 1, phi2(0) = 1/2
/// assert!((phis[1].get(0, 0) - 1.0).abs() < 1e-12);
/// assert!((phis[2].get(0, 0) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn phi_matrices(a: &DenseMatrix, order: usize) -> KrylovResult<Vec<DenseMatrix>> {
    if order > MAX_PHI_ORDER {
        return Err(KrylovError::UnsupportedPhiOrder {
            order,
            max_order: MAX_PHI_ORDER,
        });
    }
    if a.rows() != a.cols() {
        return Err(KrylovError::Sparse(exi_sparse::SparseError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        }));
    }
    let n = a.rows();
    if order == 0 {
        return Ok(vec![expm(a)?]);
    }
    let p = order;
    let dim = n + p * n;
    // Augmented matrix W.
    let mut w = DenseMatrix::zeros(dim, dim);
    for i in 0..n {
        for j in 0..n {
            let v = a.get(i, j);
            if v != 0.0 {
                w.set(i, j, v);
            }
        }
    }
    // Identity super-diagonal blocks.
    for block in 0..p {
        let row0 = block * n;
        let col0 = (block + 1) * n;
        for i in 0..n {
            w.set(row0 + i, col0 + i, 1.0);
        }
    }
    let e = expm(&w)?;
    let mut out = Vec::with_capacity(order + 1);
    // φ0 is the (0,0) block.
    let mut phi0 = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            phi0.set(i, j, e.get(i, j));
        }
    }
    out.push(phi0);
    // φk is the (0,k) block.
    for k in 1..=order {
        let col0 = k * n;
        let mut phik = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                phik.set(i, j, e.get(i, col0 + j));
            }
        }
        out.push(phik);
    }
    Ok(out)
}

/// Computes the vectors `[φ0(A)·v, φ1(A)·v, …, φ_order(A)·v]` for a dense `A`.
///
/// # Errors
///
/// Same conditions as [`phi_matrices`], plus a
/// [`KrylovError::DimensionMismatch`] when `v.len() != a.rows()`.
pub fn phi_vectors(a: &DenseMatrix, v: &[f64], order: usize) -> KrylovResult<Vec<Vec<f64>>> {
    if v.len() != a.rows() {
        return Err(KrylovError::DimensionMismatch {
            expected: a.rows(),
            found: v.len(),
        });
    }
    let phis = phi_matrices(a, order)?;
    Ok(phis.iter().map(|p| p.matvec(v)).collect())
}

/// Scalar φ-functions, used by tests and by step-size heuristics.
///
/// Numerically stable near `z = 0` via Taylor expansion.
pub fn phi_scalar(order: usize, z: f64) -> f64 {
    match order {
        0 => z.exp(),
        1 => {
            if z.abs() < 1e-5 {
                1.0 + z / 2.0 + z * z / 6.0 + z * z * z / 24.0
            } else {
                (z.exp() - 1.0) / z
            }
        }
        2 => {
            if z.abs() < 1e-4 {
                0.5 + z / 6.0 + z * z / 24.0 + z * z * z / 120.0
            } else {
                (z.exp() - 1.0 - z) / (z * z)
            }
        }
        _ => {
            // Recursive definition: phi_{k}(z) = (phi_{k-1}(z) - 1/(k-1)!) / z.
            let mut fact = 1.0;
            for i in 1..order {
                fact *= i as f64;
            }
            if z.abs() < 1e-3 {
                // Taylor: phi_k(z) = sum_{j>=0} z^j / (j+k)!
                let mut sum = 0.0;
                let mut denom = {
                    let mut f = 1.0;
                    for i in 1..=order {
                        f *= i as f64;
                    }
                    f
                };
                let mut zj = 1.0;
                for j in 0..8 {
                    sum += zj / denom;
                    zj *= z;
                    denom *= (j + order + 1) as f64;
                }
                sum
            } else {
                (phi_scalar(order - 1, z) - 1.0 / fact) / z
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the formulas under test
mod tests {
    use super::*;

    #[test]
    fn scalar_phi_values() {
        assert!((phi_scalar(0, 1.0) - 1.0_f64.exp()).abs() < 1e-14);
        assert!((phi_scalar(1, 1.0) - (1.0_f64.exp() - 1.0)).abs() < 1e-14);
        assert!((phi_scalar(2, 1.0) - (1.0_f64.exp() - 2.0)).abs() < 1e-14);
        // Limits at zero.
        assert!((phi_scalar(1, 0.0) - 1.0).abs() < 1e-12);
        assert!((phi_scalar(2, 0.0) - 0.5).abs() < 1e-12);
        assert!((phi_scalar(3, 0.0) - 1.0 / 6.0).abs() < 1e-10);
    }

    #[test]
    fn phi_matrices_of_scalar_match_scalar_phi() {
        for &z in &[0.0, 0.3, -2.0, 5.0, -40.0] {
            let a = DenseMatrix::from_rows(&[&[z]]);
            let phis = phi_matrices(&a, 2).unwrap();
            for k in 0..=2 {
                let expected = phi_scalar(k, z);
                let got = phis[k].get(0, 0);
                let scale = expected.abs().max(1.0);
                assert!(
                    (got - expected).abs() / scale < 1e-10,
                    "phi_{k}({z}): got {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn phi_identity_relation_holds_for_matrices() {
        // z*phi1(z) = e^z - 1  =>  A*phi1(A) = e^A - I.
        let a = DenseMatrix::from_rows(&[&[-1.0, 0.3], &[0.2, -2.0]]);
        let phis = phi_matrices(&a, 2).unwrap();
        let lhs = a.matmul(&phis[1]);
        let rhs = phis[0].sub(&DenseMatrix::identity(2));
        for i in 0..2 {
            for j in 0..2 {
                assert!((lhs.get(i, j) - rhs.get(i, j)).abs() < 1e-12);
            }
        }
        // A^2*phi2(A) = e^A - I - A.
        let lhs2 = a.matmul(&a).matmul(&phis[2]);
        let rhs2 = phis[0].sub(&DenseMatrix::identity(2)).sub(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((lhs2.get(i, j) - rhs2.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn phi_vectors_match_matrix_product() {
        let a = DenseMatrix::from_rows(&[&[-0.5, 0.1], &[0.0, -1.5]]);
        let v = vec![1.0, 2.0];
        let pv = phi_vectors(&a, &v, 2).unwrap();
        let pm = phi_matrices(&a, 2).unwrap();
        for k in 0..=2 {
            let direct = pm[k].matvec(&v);
            for i in 0..2 {
                assert!((pv[k][i] - direct[i]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn unsupported_order_rejected() {
        let a = DenseMatrix::identity(2);
        assert!(matches!(
            phi_matrices(&a, MAX_PHI_ORDER + 1),
            Err(KrylovError::UnsupportedPhiOrder { .. })
        ));
        assert!(matches!(
            phi_vectors(&a, &[1.0], 1),
            Err(KrylovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn order_zero_is_plain_exponential() {
        let a = DenseMatrix::from_rows(&[&[0.7]]);
        let phis = phi_matrices(&a, 0).unwrap();
        assert_eq!(phis.len(), 1);
        assert!((phis[0].get(0, 0) - 0.7_f64.exp()).abs() < 1e-13);
    }
}
