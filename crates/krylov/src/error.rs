//! Error types for the matrix-exponential and Krylov-subspace kernels.

use std::error::Error;
use std::fmt;

use exi_sparse::SparseError;

/// Errors produced by matrix function evaluation and Krylov subspace methods.
#[derive(Debug, Clone, PartialEq)]
pub enum KrylovError {
    /// An underlying sparse linear algebra operation failed (factorization,
    /// solve, dimension checks).
    Sparse(SparseError),
    /// The Arnoldi process did not reach the requested residual tolerance
    /// within the allowed subspace dimension.
    NotConverged {
        /// Maximum subspace dimension that was tried.
        max_dimension: usize,
        /// Residual norm at the last iteration.
        residual: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// The requested phi-function order is not supported.
    UnsupportedPhiOrder {
        /// Requested order.
        order: usize,
        /// Largest supported order.
        max_order: usize,
    },
    /// The supplied vector length does not match the operator dimension.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        found: usize,
    },
    /// The starting vector of a Krylov process is (numerically) zero.
    ZeroStartVector,
    /// The Arnoldi process produced a non-finite basis vector — the operator
    /// application overflowed (typically a solve against a nearly singular
    /// matrix). Surfaced as an error instead of letting NaN poison the
    /// Hessenberg matrix and panic downstream dense kernels.
    Breakdown {
        /// Subspace dimension reached when the breakdown was detected.
        dimension: usize,
    },
}

impl fmt::Display for KrylovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KrylovError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
            KrylovError::NotConverged { max_dimension, residual, tolerance } => write!(
                f,
                "krylov process not converged: residual {residual:.3e} > tol {tolerance:.3e} at m = {max_dimension}"
            ),
            KrylovError::UnsupportedPhiOrder { order, max_order } => {
                write!(f, "phi order {order} unsupported (max {max_order})")
            }
            KrylovError::DimensionMismatch { expected, found } => {
                write!(f, "vector length {found} does not match operator dimension {expected}")
            }
            KrylovError::ZeroStartVector => write!(f, "krylov start vector is zero"),
            KrylovError::Breakdown { dimension } => write!(
                f,
                "krylov basis became non-finite at dimension {dimension} (operator overflow)"
            ),
        }
    }
}

impl Error for KrylovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KrylovError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for KrylovError {
    fn from(e: SparseError) -> Self {
        KrylovError::Sparse(e)
    }
}

/// Result alias for this crate.
pub type KrylovResult<T> = Result<T, KrylovError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KrylovError::from(SparseError::Singular {
            column: 1,
            unknown: None,
        });
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
        let e = KrylovError::NotConverged {
            max_dimension: 10,
            residual: 1.0,
            tolerance: 1e-7,
        };
        assert!(e.to_string().contains("not converged"));
        assert!(std::error::Error::source(&e).is_none());
        let e = KrylovError::ZeroStartVector;
        assert!(e.to_string().contains("zero"));
        let e = KrylovError::Breakdown { dimension: 4 };
        assert!(e.to_string().contains("non-finite"), "{e}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KrylovError>();
    }
}
