//! The Arnoldi process and the standard-Krylov MEVP front-end.
//!
//! The Arnoldi iteration is shared by all three subspace flavours; only the
//! operator being applied and the convergence test differ. The standard
//! Krylov front-end in this module corresponds to the prior-work formulation
//! (paper Eq. 5–6) that requires a factorization of `C`; it exists both as a
//! baseline for the ablation benchmarks and to demonstrate the convergence
//! problem the invert Krylov method solves.

use exi_sparse::{vector, CsrMatrix, DenseMatrix, SparseLu};

use crate::decomposition::{KrylovDecomposition, ProjectionKind};
use crate::error::{KrylovError, KrylovResult};
use crate::mevp::{MevpOptions, MevpOutcome};
use crate::operator::{JacobianOperator, KrylovOperator};

/// Subdiagonal magnitude below which the Arnoldi process is declared to have
/// found an invariant subspace ("happy breakdown").
const BREAKDOWN_TOLERANCE: f64 = 1e-14;

/// Incremental Arnoldi factorization with modified Gram–Schmidt
/// orthogonalization (and one step of re-orthogonalization for robustness).
#[derive(Debug)]
pub(crate) struct ArnoldiProcess {
    basis: Vec<Vec<f64>>,
    hess: DenseMatrix,
    beta: f64,
    m: usize,
    max_m: usize,
    breakdown: bool,
}

impl ArnoldiProcess {
    /// Starts the process from vector `v`.
    pub(crate) fn new(v: &[f64], max_m: usize) -> KrylovResult<Self> {
        let beta = vector::norm2(v);
        if beta == 0.0 || !beta.is_finite() {
            return Err(KrylovError::ZeroStartVector);
        }
        let v1: Vec<f64> = v.iter().map(|x| x / beta).collect();
        Ok(ArnoldiProcess {
            basis: vec![v1],
            hess: DenseMatrix::zeros(max_m + 1, max_m),
            beta,
            m: 0,
            max_m,
            breakdown: false,
        })
    }

    /// The most recent basis vector (the one the operator should be applied to
    /// for the next step).
    pub(crate) fn last_vector(&self) -> &[f64] {
        &self.basis[self.m]
    }

    /// Current subspace dimension.
    pub(crate) fn dimension(&self) -> usize {
        self.m
    }

    /// Whether a happy breakdown occurred (subspace is invariant and exact).
    pub(crate) fn breakdown(&self) -> bool {
        self.breakdown
    }

    /// Absorbs `w = A·v_j`, orthogonalizes it against the basis and appends a
    /// new column to the Hessenberg matrix. Returns the subdiagonal entry
    /// `h_{j+1,j}`.
    pub(crate) fn absorb(&mut self, mut w: Vec<f64>) -> KrylovResult<f64> {
        if self.m >= self.max_m {
            return Err(KrylovError::NotConverged {
                max_dimension: self.max_m,
                residual: f64::NAN,
                tolerance: 0.0,
            });
        }
        let j = self.m;
        // Modified Gram–Schmidt.
        for i in 0..=j {
            let hij = vector::dot(&w, &self.basis[i]);
            self.hess.add_to(i, j, hij);
            vector::axpy(-hij, &self.basis[i], &mut w);
        }
        // One re-orthogonalization pass guards against loss of orthogonality
        // in stiff problems.
        for i in 0..=j {
            let correction = vector::dot(&w, &self.basis[i]);
            if correction.abs() > 0.0 {
                self.hess.add_to(i, j, correction);
                vector::axpy(-correction, &self.basis[i], &mut w);
            }
        }
        let hnext = vector::norm2(&w);
        self.m += 1;
        if hnext <= BREAKDOWN_TOLERANCE {
            self.breakdown = true;
            return Ok(0.0);
        }
        self.hess.set(j + 1, j, hnext);
        vector::scale(1.0 / hnext, &mut w);
        self.basis.push(w);
        Ok(hnext)
    }

    /// Finalizes into a [`KrylovDecomposition`] of the given kind.
    pub(crate) fn into_decomposition(self, kind: ProjectionKind) -> KrylovDecomposition {
        let m = self.m;
        let rows = if self.breakdown { m } else { m + 1 };
        let hess = self.hess.submatrix(rows, m);
        KrylovDecomposition::new(kind, self.basis, hess, self.beta, m)
    }
}

/// Computes `e^{hJ}·v` with the **standard** Krylov subspace `K_m(J, v)`,
/// `J = -C⁻¹G` (paper Eq. 5–6). Requires a factorization of `C`.
///
/// # Errors
///
/// * [`KrylovError::ZeroStartVector`] if `v` is zero.
/// * [`KrylovError::NotConverged`] if the residual tolerance is not met within
///   `options.max_dimension`.
/// * Sparse kernel errors from the `C` solves.
///
/// # Examples
///
/// ```
/// use exi_sparse::{SparseLu, TripletMatrix};
/// use exi_krylov::{mevp_standard_krylov, MevpOptions};
///
/// # fn main() -> Result<(), exi_krylov::KrylovError> {
/// // A 2x2 RC system: C = I, G = diag(1, 2), so e^{hJ} = diag(e^-h, e^-2h).
/// let mut c = TripletMatrix::new(2, 2);
/// c.push(0, 0, 1.0);
/// c.push(1, 1, 1.0);
/// let c = c.to_csr();
/// let mut g = TripletMatrix::new(2, 2);
/// g.push(0, 0, 1.0);
/// g.push(1, 1, 2.0);
/// let g = g.to_csr();
/// let c_lu = SparseLu::factorize(&c)?;
/// let out = mevp_standard_krylov(&g, &c_lu, &[1.0, 1.0], 0.1, &MevpOptions::default())?;
/// assert!((out.mevp[0] - (-0.1f64).exp()).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn mevp_standard_krylov(
    g: &CsrMatrix,
    c_lu: &SparseLu,
    v: &[f64],
    h: f64,
    options: &MevpOptions,
) -> KrylovResult<MevpOutcome> {
    let op = JacobianOperator::new(g, c_lu);
    if v.len() != op.dim() {
        return Err(KrylovError::DimensionMismatch { expected: op.dim(), found: v.len() });
    }
    let mut process = ArnoldiProcess::new(v, options.max_dimension)?;
    let mut last_residual = f64::INFINITY;
    while process.dimension() < options.max_dimension {
        let w = op.apply(process.last_vector())?;
        process.absorb(w)?;
        if process.breakdown() {
            last_residual = 0.0;
            break;
        }
        if process.dimension() < options.min_dimension {
            continue;
        }
        // Saad's posterior estimate: beta * h_{m+1,m} * |e_mᵀ e^{hH_m} e₁|.
        let snapshot = preview_decomposition(&process, ProjectionKind::Direct);
        last_residual = snapshot.residual_scalar(h)?;
        if last_residual <= options.tolerance {
            break;
        }
    }
    if last_residual > options.tolerance && !options.allow_unconverged {
        return Err(KrylovError::NotConverged {
            max_dimension: process.dimension(),
            residual: last_residual,
            tolerance: options.tolerance,
        });
    }
    let dimension = process.dimension();
    let decomposition = process.into_decomposition(ProjectionKind::Direct);
    let mevp = decomposition.eval_expv(h)?;
    Ok(MevpOutcome { mevp, decomposition, residual: last_residual, dimension })
}

/// Builds a cheap read-only decomposition snapshot for convergence testing
/// without consuming the process.
pub(crate) fn preview_decomposition(
    process: &ArnoldiProcess,
    kind: ProjectionKind,
) -> KrylovDecomposition {
    let m = process.m;
    let rows = if process.breakdown { m } else { m + 1 };
    let hess = process.hess.submatrix(rows, m);
    KrylovDecomposition::new(kind, process.basis.clone(), hess, process.beta, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_sparse::TripletMatrix;

    fn diag(vals: &[f64]) -> CsrMatrix {
        let mut t = TripletMatrix::new(vals.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            t.push(i, i, v);
        }
        t.to_csr()
    }

    #[test]
    fn zero_start_vector_is_rejected() {
        assert!(matches!(
            ArnoldiProcess::new(&[0.0, 0.0], 5),
            Err(KrylovError::ZeroStartVector)
        ));
    }

    #[test]
    fn arnoldi_basis_is_orthonormal() {
        // Operator: a fixed dense-ish sparse matrix applied repeatedly.
        let a = {
            let mut t = TripletMatrix::new(4, 4);
            let vals = [
                [2.0, -1.0, 0.0, 0.5],
                [-1.0, 3.0, -1.0, 0.0],
                [0.0, -1.0, 2.5, -1.0],
                [0.5, 0.0, -1.0, 4.0],
            ];
            for i in 0..4 {
                for j in 0..4 {
                    t.push(i, j, vals[i][j]);
                }
            }
            t.to_csr()
        };
        let v = vec![1.0, 0.0, -2.0, 1.0];
        let mut p = ArnoldiProcess::new(&v, 4).unwrap();
        for _ in 0..4 {
            if p.breakdown() {
                break;
            }
            let w = a.mul_vec(p.last_vector());
            p.absorb(w).unwrap();
        }
        let d = p.into_decomposition(ProjectionKind::Direct);
        let basis = d.basis();
        for i in 0..basis.len() {
            for j in 0..basis.len() {
                let dot = vector::dot(&basis[i], &basis[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-10, "({i},{j}) -> {dot}");
            }
        }
    }

    #[test]
    fn standard_krylov_matches_diagonal_exponential() {
        let c = diag(&[1.0, 1.0, 1.0]);
        let g = diag(&[1.0, 5.0, 10.0]);
        let c_lu = SparseLu::factorize(&c).unwrap();
        let v = vec![1.0, 2.0, -1.0];
        let h = 0.05;
        let out = mevp_standard_krylov(&g, &c_lu, &v, h, &MevpOptions::default()).unwrap();
        for (i, &gi) in [1.0, 5.0, 10.0].iter().enumerate() {
            let expected = v[i] * (-h * gi).exp();
            assert!((out.mevp[i] - expected).abs() < 1e-6, "{} vs {}", out.mevp[i], expected);
        }
        assert!(out.dimension <= 3);
    }

    #[test]
    fn breakdown_gives_exact_result() {
        // v is an eigenvector of J: subspace dimension 1 suffices.
        let c = diag(&[1.0, 1.0]);
        let g = diag(&[3.0, 3.0]);
        let c_lu = SparseLu::factorize(&c).unwrap();
        let out =
            mevp_standard_krylov(&g, &c_lu, &[1.0, 1.0], 0.2, &MevpOptions::default()).unwrap();
        assert_eq!(out.dimension, 1);
        assert!((out.mevp[0] - (-0.6_f64).exp()).abs() < 1e-12);
        assert_eq!(out.residual, 0.0);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let c = diag(&[1.0, 1.0]);
        let g = diag(&[1.0, 1.0]);
        let c_lu = SparseLu::factorize(&c).unwrap();
        assert!(matches!(
            mevp_standard_krylov(&g, &c_lu, &[1.0], 0.1, &MevpOptions::default()),
            Err(KrylovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn not_converged_when_dimension_capped() {
        // A stiff system with widely spread eigenvalues and a tiny cap.
        let n = 20;
        let c = diag(&vec![1.0; n]);
        let gvals: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 7) as i32)).collect();
        let g = diag(&gvals);
        let c_lu = SparseLu::factorize(&c).unwrap();
        let v = vec![1.0; n];
        let opts = MevpOptions { max_dimension: 3, tolerance: 1e-12, ..MevpOptions::default() };
        let r = mevp_standard_krylov(&g, &c_lu, &v, 1e-3, &opts);
        assert!(matches!(r, Err(KrylovError::NotConverged { .. })));
    }
}
