//! The Arnoldi process and the standard-Krylov MEVP front-end.
//!
//! The Arnoldi iteration is shared by all three subspace flavours; only the
//! operator being applied and the convergence test differ. The standard
//! Krylov front-end in this module corresponds to the prior-work formulation
//! (paper Eq. 5–6) that requires a factorization of `C`; it exists both as a
//! baseline for the ablation benchmarks and to demonstrate the convergence
//! problem the invert Krylov method solves.
//!
//! The process draws its basis vectors and Hessenberg storage from a
//! [`MevpWorkspace`] arena and applies operators through
//! [`KrylovOperator::apply_into`], so building a subspace in a transient
//! engine's steady state performs no circuit-sized heap allocation.
//! Convergence tests run on the small Hessenberg matrix alone — the basis is
//! never cloned.

use exi_sparse::{vector, CsrMatrix, DenseMatrix, SparseLu};

use crate::decomposition::{phi_small_of, residual_scalar_of, KrylovDecomposition, ProjectionKind};
use crate::error::{KrylovError, KrylovResult};
use crate::mevp::{MevpOptions, MevpOutcome, MevpWorkspace};
use crate::operator::{JacobianOperator, KrylovOperator};

/// Subdiagonal magnitude below which the Arnoldi process is declared to have
/// found an invariant subspace ("happy breakdown").
const BREAKDOWN_TOLERANCE: f64 = 1e-14;

/// Norm-ratio trigger for the re-orthogonalization pass (DGKS criterion):
/// the second Gram–Schmidt sweep runs only when the first sweep shrank the
/// vector below this fraction of its **pre-orthogonalization** norm — i.e.
/// when cancellation may actually have eaten significant digits. (The
/// previous guard `correction.abs() > 0.0` was effectively always true, so
/// every absorb paid a full second sweep even when it contributed nothing.)
const REORTH_NORM_RATIO: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Incremental Arnoldi factorization with modified Gram–Schmidt
/// orthogonalization (and one guarded step of re-orthogonalization for
/// robustness in stiff problems).
#[derive(Debug)]
pub(crate) struct ArnoldiProcess {
    basis: Vec<Vec<f64>>,
    hess: DenseMatrix,
    beta: f64,
    m: usize,
    max_m: usize,
    breakdown: bool,
    /// Candidate vector being orthogonalized (`A·v_m` before `absorb`).
    w: Vec<f64>,
}

impl ArnoldiProcess {
    /// Starts the process from vector `v` with a private workspace
    /// (convenience for tests; hot paths use [`ArnoldiProcess::new_in`]).
    #[cfg(test)]
    pub(crate) fn new(v: &[f64], max_m: usize) -> KrylovResult<Self> {
        Self::new_in(v, max_m, &mut MevpWorkspace::new())
    }

    /// Starts the process from vector `v`, drawing storage from `ws`.
    pub(crate) fn new_in(v: &[f64], max_m: usize, ws: &mut MevpWorkspace) -> KrylovResult<Self> {
        if max_m == 0 {
            // A zero-dimensional subspace can represent nothing; erroring here
            // keeps the front-ends from finalizing an empty decomposition
            // (whose constructor would panic on its invariants).
            return Err(KrylovError::NotConverged {
                max_dimension: 0,
                residual: f64::NAN,
                tolerance: 0.0,
            });
        }
        let beta = vector::norm2(v);
        if beta == 0.0 || !beta.is_finite() {
            return Err(KrylovError::ZeroStartVector);
        }
        let mut v1 = ws.take_vec(v.len());
        for (out, x) in v1.iter_mut().zip(v.iter()) {
            *out = x / beta;
        }
        let mut basis = Vec::with_capacity(max_m + 1);
        basis.push(v1);
        Ok(ArnoldiProcess {
            basis,
            hess: ws.take_hess(max_m + 1, max_m),
            beta,
            m: 0,
            max_m,
            breakdown: false,
            w: ws.take_vec(v.len()),
        })
    }

    /// The most recent basis vector (the one the operator is applied to for
    /// the next step; engines go through [`ArnoldiProcess::step`]).
    #[cfg(test)]
    pub(crate) fn last_vector(&self) -> &[f64] {
        &self.basis[self.m]
    }

    /// The tentative `(m+1)`-th basis vector, available after a non-breakdown
    /// step (used by the invert-Krylov residual of Eq. 22).
    pub(crate) fn next_vector(&self) -> Option<&[f64]> {
        if self.breakdown {
            None
        } else if self.basis.len() > self.m {
            Some(&self.basis[self.m])
        } else {
            None
        }
    }

    /// Current subspace dimension.
    pub(crate) fn dimension(&self) -> usize {
        self.m
    }

    /// Whether a happy breakdown occurred (subspace is invariant and exact).
    pub(crate) fn breakdown(&self) -> bool {
        self.breakdown
    }

    /// Applies `op` to the newest basis vector and absorbs the result —
    /// one full Arnoldi step without any allocation. Returns `h_{j+1,j}`.
    pub(crate) fn step<O: KrylovOperator>(
        &mut self,
        op: &O,
        ws: &mut MevpWorkspace,
    ) -> KrylovResult<f64> {
        if self.breakdown {
            // The subspace is invariant and exact; there is no vector to
            // expand with (the basis holds only `m` vectors). A further step
            // is a harmless no-op rather than an out-of-bounds panic.
            return Ok(0.0);
        }
        if self.m >= self.max_m {
            return Err(KrylovError::NotConverged {
                max_dimension: self.max_m,
                residual: f64::NAN,
                tolerance: 0.0,
            });
        }
        op.apply_into(&self.basis[self.m], &mut self.w, &mut ws.op)?;
        self.absorb_candidate(ws)
    }

    /// Absorbs an externally computed `w = A·v_j` (test helper; engines use
    /// [`ArnoldiProcess::step`]).
    #[cfg(test)]
    pub(crate) fn absorb(&mut self, w: Vec<f64>) -> KrylovResult<f64> {
        if self.breakdown {
            return Ok(0.0);
        }
        if self.m >= self.max_m {
            return Err(KrylovError::NotConverged {
                max_dimension: self.max_m,
                residual: f64::NAN,
                tolerance: 0.0,
            });
        }
        self.w.copy_from_slice(&w);
        self.absorb_candidate(&mut MevpWorkspace::new())
    }

    /// Orthogonalizes `self.w` against the basis and appends a new column to
    /// the Hessenberg matrix. Returns the subdiagonal entry `h_{j+1,j}`.
    fn absorb_candidate(&mut self, ws: &mut MevpWorkspace) -> KrylovResult<f64> {
        let j = self.m;
        let pre_norm = vector::norm2(&self.w);
        // Modified Gram–Schmidt.
        for i in 0..=j {
            let hij = vector::dot(&self.w, &self.basis[i]);
            self.hess.add_to(i, j, hij);
            vector::axpy(-hij, &self.basis[i], &mut self.w);
        }
        // One guarded re-orthogonalization pass (DGKS): only when the first
        // sweep cancelled most of the vector can round-off have contaminated
        // the remainder; otherwise the second sweep contributes nothing and
        // is skipped, halving the Gram–Schmidt work of a typical absorb.
        let mut hnext = vector::norm2(&self.w);
        if hnext < REORTH_NORM_RATIO * pre_norm {
            for i in 0..=j {
                let correction = vector::dot(&self.w, &self.basis[i]);
                if correction != 0.0 {
                    self.hess.add_to(i, j, correction);
                    vector::axpy(-correction, &self.basis[i], &mut self.w);
                }
            }
            hnext = vector::norm2(&self.w);
        }
        self.m += 1;
        if !hnext.is_finite() {
            // The operator application overflowed: report it instead of
            // normalizing by NaN and poisoning every later basis vector.
            return Err(KrylovError::Breakdown { dimension: self.m });
        }
        if hnext <= BREAKDOWN_TOLERANCE {
            self.breakdown = true;
            return Ok(0.0);
        }
        self.hess.set(j + 1, j, hnext);
        let mut v_next = ws.take_vec(self.w.len());
        std::mem::swap(&mut v_next, &mut self.w);
        vector::scale(1.0 / hnext, &mut v_next);
        self.basis.push(v_next);
        Ok(hnext)
    }

    /// Small-space coefficients `β · φ_order(h·S) · e₁` of the current
    /// iterate, written into `out` (no basis access, nothing cloned).
    pub(crate) fn phi_small(
        &self,
        kind: ProjectionKind,
        order: usize,
        h: f64,
        out: &mut Vec<f64>,
    ) -> KrylovResult<()> {
        let hm = self.hess.submatrix(self.m, self.m);
        phi_small_of(kind, &hm, self.beta, order, h, out)
    }

    /// Residual estimate of the current iterate, computed from the small
    /// Hessenberg matrix alone (no basis access, nothing cloned).
    pub(crate) fn residual_scalar(&self, kind: ProjectionKind, h: f64) -> KrylovResult<f64> {
        let hm = self.hess.submatrix(self.m, self.m);
        let h_next = if self.breakdown {
            0.0
        } else {
            self.hess.get(self.m, self.m - 1)
        };
        residual_scalar_of(kind, &hm, h_next, self.beta, h)
    }

    /// Finalizes into a [`KrylovDecomposition`] of the given kind, returning
    /// the scratch storage to `ws` for the next subspace build.
    pub(crate) fn into_decomposition_in(
        self,
        kind: ProjectionKind,
        ws: &mut MevpWorkspace,
    ) -> KrylovDecomposition {
        let m = self.m;
        let rows = if self.breakdown { m } else { m + 1 };
        let hess_small = self.hess.submatrix(rows, m);
        ws.recycle_vec(self.w);
        ws.hess = Some(self.hess);
        KrylovDecomposition::new(kind, self.basis, hess_small, self.beta, m)
    }

    /// Finalizes into a [`KrylovDecomposition`] (test helper).
    #[cfg(test)]
    pub(crate) fn into_decomposition(self, kind: ProjectionKind) -> KrylovDecomposition {
        let mut ws = MevpWorkspace::new();
        self.into_decomposition_in(kind, &mut ws)
    }
}

/// Computes `e^{hJ}·v` with the **standard** Krylov subspace `K_m(J, v)`,
/// `J = -C⁻¹G` (paper Eq. 5–6). Requires a factorization of `C`.
///
/// # Errors
///
/// * [`KrylovError::ZeroStartVector`] if `v` is zero.
/// * [`KrylovError::NotConverged`] if the residual tolerance is not met within
///   `options.max_dimension`.
/// * Sparse kernel errors from the `C` solves.
///
/// # Examples
///
/// ```
/// use exi_sparse::{SparseLu, TripletMatrix};
/// use exi_krylov::{mevp_standard_krylov, MevpOptions};
///
/// # fn main() -> Result<(), exi_krylov::KrylovError> {
/// // A 2x2 RC system: C = I, G = diag(1, 2), so e^{hJ} = diag(e^-h, e^-2h).
/// let mut c = TripletMatrix::new(2, 2);
/// c.push(0, 0, 1.0);
/// c.push(1, 1, 1.0);
/// let c = c.to_csr();
/// let mut g = TripletMatrix::new(2, 2);
/// g.push(0, 0, 1.0);
/// g.push(1, 1, 2.0);
/// let g = g.to_csr();
/// let c_lu = SparseLu::factorize(&c)?;
/// let out = mevp_standard_krylov(&g, &c_lu, &[1.0, 1.0], 0.1, &MevpOptions::default())?;
/// assert!((out.mevp[0] - (-0.1f64).exp()).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn mevp_standard_krylov(
    g: &CsrMatrix,
    c_lu: &SparseLu,
    v: &[f64],
    h: f64,
    options: &MevpOptions,
) -> KrylovResult<MevpOutcome> {
    mevp_standard_krylov_with(g, c_lu, v, h, options, &mut MevpWorkspace::new())
}

/// As [`mevp_standard_krylov`], drawing all scratch storage from `ws` — the
/// allocation-free variant for hot loops. Recycle the returned decomposition
/// with [`MevpWorkspace::recycle`] when done with it.
///
/// # Errors
///
/// Same as [`mevp_standard_krylov`].
pub fn mevp_standard_krylov_with(
    g: &CsrMatrix,
    c_lu: &SparseLu,
    v: &[f64],
    h: f64,
    options: &MevpOptions,
    ws: &mut MevpWorkspace,
) -> KrylovResult<MevpOutcome> {
    let op = JacobianOperator::new(g, c_lu);
    if v.len() != op.dim() {
        return Err(KrylovError::DimensionMismatch {
            expected: op.dim(),
            found: v.len(),
        });
    }
    let mut process = ArnoldiProcess::new_in(v, options.max_dimension, ws)?;
    let mut last_residual = f64::INFINITY;
    while process.dimension() < options.max_dimension {
        process.step(&op, ws)?;
        if process.breakdown() {
            last_residual = 0.0;
            break;
        }
        if process.dimension() < options.min_dimension {
            continue;
        }
        // Saad's posterior estimate: beta * h_{m+1,m} * |e_mᵀ e^{hH_m} e₁|.
        last_residual = process.residual_scalar(ProjectionKind::Direct, h)?;
        if last_residual <= options.tolerance {
            break;
        }
    }
    if last_residual > options.tolerance && !options.allow_unconverged {
        return Err(KrylovError::NotConverged {
            max_dimension: process.dimension(),
            residual: last_residual,
            tolerance: options.tolerance,
        });
    }
    let dimension = process.dimension();
    let decomposition = process.into_decomposition_in(ProjectionKind::Direct, ws);
    let mut mevp = ws.take_vec(v.len());
    decomposition.eval_expv_into(h, &mut mevp)?;
    Ok(MevpOutcome {
        mevp,
        decomposition,
        residual: last_residual,
        dimension,
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the formulas under test
mod tests {
    use super::*;
    use exi_sparse::TripletMatrix;

    fn diag(vals: &[f64]) -> CsrMatrix {
        let mut t = TripletMatrix::new(vals.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            t.push(i, i, v);
        }
        t.to_csr()
    }

    #[test]
    fn zero_start_vector_is_rejected() {
        assert!(matches!(
            ArnoldiProcess::new(&[0.0, 0.0], 5),
            Err(KrylovError::ZeroStartVector)
        ));
    }

    #[test]
    fn arnoldi_basis_is_orthonormal() {
        // Operator: a fixed dense-ish sparse matrix applied repeatedly.
        let a = {
            let mut t = TripletMatrix::new(4, 4);
            let vals = [
                [2.0, -1.0, 0.0, 0.5],
                [-1.0, 3.0, -1.0, 0.0],
                [0.0, -1.0, 2.5, -1.0],
                [0.5, 0.0, -1.0, 4.0],
            ];
            for i in 0..4 {
                for j in 0..4 {
                    t.push(i, j, vals[i][j]);
                }
            }
            t.to_csr()
        };
        let v = vec![1.0, 0.0, -2.0, 1.0];
        let mut p = ArnoldiProcess::new(&v, 4).unwrap();
        for _ in 0..4 {
            if p.breakdown() {
                break;
            }
            let w = a.mul_vec(p.last_vector());
            p.absorb(w).unwrap();
        }
        let d = p.into_decomposition(ProjectionKind::Direct);
        let basis = d.basis();
        for i in 0..basis.len() {
            for j in 0..basis.len() {
                let dot = vector::dot(&basis[i], &basis[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-10, "({i},{j}) -> {dot}");
            }
        }
    }

    #[test]
    fn workspace_recycling_reuses_basis_storage() {
        let c = diag(&[1.0, 2.0, 3.0, 4.0]);
        let g = diag(&[1.0, 1.0, 1.0, 1.0]);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let mut ws = MevpWorkspace::new();
        let v = vec![1.0, -0.5, 2.0, 0.25];
        let opts = MevpOptions::default();
        let first =
            crate::invert::mevp_invert_krylov_with(&c, &g, &g_lu, &v, 0.1, &opts, &mut ws).unwrap();
        let after_first = ws.allocations();
        let first_mevp = first.mevp.clone();
        ws.recycle_vec(first.mevp);
        ws.recycle(first.decomposition);
        let second =
            crate::invert::mevp_invert_krylov_with(&c, &g, &g_lu, &v, 0.1, &opts, &mut ws).unwrap();
        // The second build ran entirely from the pool.
        assert_eq!(ws.allocations(), after_first);
        // And produced the same result.
        assert_eq!(first_mevp, second.mevp);
    }

    #[test]
    fn standard_krylov_matches_diagonal_exponential() {
        let c = diag(&[1.0, 1.0, 1.0]);
        let g = diag(&[1.0, 5.0, 10.0]);
        let c_lu = SparseLu::factorize(&c).unwrap();
        let v = vec![1.0, 2.0, -1.0];
        let h = 0.05;
        let out = mevp_standard_krylov(&g, &c_lu, &v, h, &MevpOptions::default()).unwrap();
        for (i, &gi) in [1.0, 5.0, 10.0].iter().enumerate() {
            let expected = v[i] * (-h * gi).exp();
            assert!(
                (out.mevp[i] - expected).abs() < 1e-6,
                "{} vs {}",
                out.mevp[i],
                expected
            );
        }
        assert!(out.dimension <= 3);
    }

    #[test]
    fn breakdown_gives_exact_result() {
        // v is an eigenvector of J: subspace dimension 1 suffices.
        let c = diag(&[1.0, 1.0]);
        let g = diag(&[3.0, 3.0]);
        let c_lu = SparseLu::factorize(&c).unwrap();
        let out =
            mevp_standard_krylov(&g, &c_lu, &[1.0, 1.0], 0.2, &MevpOptions::default()).unwrap();
        assert_eq!(out.dimension, 1);
        assert!((out.mevp[0] - (-0.6_f64).exp()).abs() < 1e-12);
        assert_eq!(out.residual, 0.0);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let c = diag(&[1.0, 1.0]);
        let g = diag(&[1.0, 1.0]);
        let c_lu = SparseLu::factorize(&c).unwrap();
        assert!(matches!(
            mevp_standard_krylov(&g, &c_lu, &[1.0], 0.1, &MevpOptions::default()),
            Err(KrylovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn not_converged_when_dimension_capped() {
        // A stiff system with widely spread eigenvalues and a tiny cap.
        let n = 20;
        let c = diag(&vec![1.0; n]);
        let gvals: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 7) as i32)).collect();
        let g = diag(&gvals);
        let c_lu = SparseLu::factorize(&c).unwrap();
        let v = vec![1.0; n];
        let opts = MevpOptions {
            max_dimension: 3,
            tolerance: 1e-12,
            ..MevpOptions::default()
        };
        let r = mevp_standard_krylov(&g, &c_lu, &v, 1e-3, &opts);
        assert!(matches!(r, Err(KrylovError::NotConverged { .. })));
    }
}
