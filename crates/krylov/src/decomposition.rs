//! Krylov decompositions and their (re-)evaluation.
//!
//! A run of the Arnoldi process produces an orthonormal basis `V_{m+1}` and an
//! upper-Hessenberg matrix `H̄_m` of size `(m+1) × m`. The approximation of
//! `φ_k(hJ)·v` only involves the small matrix, so once the decomposition has
//! been built it can be re-evaluated for *any* step size `h` at negligible
//! cost — this is the "scaling-invariance" the paper exploits to adjust the
//! step size without new LU factorizations or new Krylov bases
//! (Sec. III/IV, Algorithm 2 line 9).
//!
//! All computations that involve only the small Hessenberg matrix (stable φ
//! evaluation, residual estimates) are free functions over `(kind, H_m)`, so
//! the in-progress Arnoldi iteration can run its convergence test without
//! materializing — let alone cloning — a full decomposition.

use exi_sparse::DenseMatrix;

use crate::error::{KrylovError, KrylovResult};
use crate::phi::phi_matrices;

/// How the small Hessenberg matrix relates to the circuit Jacobian `J`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProjectionKind {
    /// Standard Krylov subspace: `H_m ≈ V_mᵀ J V_m`.
    Direct,
    /// Invert Krylov subspace: `H_m ≈ V_mᵀ J⁻¹ V_m`, so `J ≈ V_m H_m⁻¹ V_mᵀ`.
    Inverse,
    /// Shift-and-invert subspace with shift `gamma`:
    /// `H_m ≈ V_mᵀ (I − γJ)⁻¹ V_m`, so `J ≈ V_m (I − H_m⁻¹)/γ V_mᵀ`.
    ShiftInvert {
        /// The shift `γ` used when building the subspace.
        gamma: f64,
    },
}

/// The small matrix `S` such that `h·J` is approximated by `h·S` in the
/// projected space, with an explicit stabilizing shift `delta` applied before
/// inverting the Hessenberg matrix (inverse and shift-invert kinds only).
pub(crate) fn projected_jacobian_of(
    kind: ProjectionKind,
    hm: &DenseMatrix,
    delta: f64,
) -> KrylovResult<DenseMatrix> {
    match kind {
        ProjectionKind::Direct => Ok(hm.clone()),
        ProjectionKind::Inverse => shifted_inverse(hm, delta),
        ProjectionKind::ShiftInvert { gamma } => {
            let hinv = shifted_inverse(hm, delta)?;
            let ident = DenseMatrix::identity(hm.rows());
            Ok(ident.sub(&hinv).scale(1.0 / gamma))
        }
    }
}

/// Inverts `hm - delta·I`, escalating the shift if the matrix is exactly
/// singular even after shifting.
fn shifted_inverse(hm: &DenseMatrix, delta: f64) -> KrylovResult<DenseMatrix> {
    let shifted = hm.sub(&DenseMatrix::identity(hm.rows()).scale(delta));
    match shifted.inverse() {
        Ok(inv) => Ok(inv),
        Err(_) => {
            let bigger = (1e4 * delta).max(1e-8 * hm.norm_inf().max(f64::MIN_POSITIVE));
            let shifted = hm.sub(&DenseMatrix::identity(hm.rows()).scale(bigger));
            Ok(shifted.inverse()?)
        }
    }
}

/// Computes the φ matrices of `h·S` with an adaptive stabilizing shift.
///
/// The projection of `J⁻¹` onto the Krylov subspace is not normal; its field
/// of values can poke into the right half-plane even though the circuit
/// itself is stable, and a (near-)singular `C` adds eigenvalues that are pure
/// rounding noise around zero. Inverting such a Hessenberg matrix can
/// manufacture enormous *positive* rates whose exponential overflows.
/// Physically all of those modes are "infinitely fast decay", so when the
/// evaluation produces non-finite values the shift `δ` is escalated towards a
/// few per mille of the step size `h` — which pins those modes to a very fast
/// stable decay while perturbing the modes that matter (|λ| ≳ h) by well
/// under the integrator's error budget.
pub(crate) fn stable_phi_of(
    kind: ProjectionKind,
    hm: &DenseMatrix,
    order: usize,
    h: f64,
) -> KrylovResult<(DenseMatrix, Vec<DenseMatrix>)> {
    let m = hm.rows();
    let base = 1e-12 * hm.norm_inf().max(f64::MIN_POSITIVE);
    let shifts: [f64; 4] = [
        base,
        (2e-3 * h.abs()).max(base),
        (2e-2 * h.abs()).max(base),
        (2e-1 * h.abs()).max(base),
    ];
    let mut last_err = None;
    for (attempt, &delta) in shifts.iter().enumerate() {
        let s = match projected_jacobian_of(kind, hm, delta) {
            Ok(s) => s,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        if matches!(kind, ProjectionKind::Direct) && attempt > 0 {
            // The direct kind never benefits from shifting; fail fast.
            break;
        }
        let hs = s.scale(h);
        match phi_matrices(&hs, order) {
            Ok(phis) => {
                // A stable circuit propagator has φ norms of order one;
                // astronomically large (or non-finite) values mean an
                // unphysical positive rate slipped through — escalate.
                let well_behaved = phis
                    .iter()
                    .all(|p| p.as_slice().iter().all(|v| v.is_finite()) && p.norm_inf() < 1e8);
                if well_behaved {
                    return Ok((s, phis));
                }
            }
            Err(e) => last_err = Some(e),
        }
        if matches!(kind, ProjectionKind::Direct) {
            break;
        }
    }
    Err(last_err.unwrap_or(KrylovError::NotConverged {
        max_dimension: m,
        residual: f64::INFINITY,
        tolerance: 0.0,
    }))
}

/// Scalar part of the matrix-exponential residual estimate at step size `h`,
/// given the square Hessenberg block `hm`, the subdiagonal element `h_next`
/// and the start-vector norm `beta`. See
/// [`KrylovDecomposition::residual_scalar`].
pub(crate) fn residual_scalar_of(
    kind: ProjectionKind,
    hm: &DenseMatrix,
    h_next: f64,
    beta: f64,
    h: f64,
) -> KrylovResult<f64> {
    if h_next == 0.0 {
        return Ok(0.0);
    }
    let m = hm.rows();
    let (s, phis) = stable_phi_of(kind, hm, 0, h)?;
    let last = match kind {
        ProjectionKind::Direct => phis[0].get(m - 1, 0),
        // Eq. (22): e_mᵀ · H_m⁻¹ · e^{h H_m⁻¹} · e₁  — note the extra H_m⁻¹
        // (the stabilized projection `s` plays the role of H_m⁻¹ here).
        ProjectionKind::Inverse | ProjectionKind::ShiftInvert { .. } => {
            let col: Vec<f64> = (0..m).map(|i| phis[0].get(i, 0)).collect();
            s.matvec(&col)[m - 1]
        }
    };
    Ok(beta * h_next.abs() * last.abs())
}

/// The small-space coefficient vector `β · φ_order(h·S) · e₁`, written into
/// `out` (length `m`). Shared by [`KrylovDecomposition::eval_phi_small`] and
/// the in-progress convergence tests of the Arnoldi front-ends.
pub(crate) fn phi_small_of(
    kind: ProjectionKind,
    hm: &DenseMatrix,
    beta: f64,
    order: usize,
    h: f64,
    out: &mut Vec<f64>,
) -> KrylovResult<()> {
    let (_, phis) = stable_phi_of(kind, hm, order, h)?;
    let phi = &phis[order];
    let m = hm.rows();
    out.clear();
    out.extend((0..m).map(|i| beta * phi.get(i, 0)));
    Ok(())
}

/// An Arnoldi decomposition together with enough information to evaluate
/// `φ_k(hJ)·v` for arbitrary `h` and `k`.
#[derive(Debug, Clone)]
pub struct KrylovDecomposition {
    kind: ProjectionKind,
    /// `m + 1` orthonormal basis vectors, each of length `n`.
    basis: Vec<Vec<f64>>,
    /// `(m+1) × m` Hessenberg matrix.
    hess: DenseMatrix,
    /// Norm of the start vector.
    beta: f64,
    /// Subspace dimension.
    m: usize,
}

impl KrylovDecomposition {
    /// Assembles a decomposition from raw Arnoldi output.
    ///
    /// # Panics
    ///
    /// Panics if the basis does not contain `m` or `m + 1` vectors or the
    /// Hessenberg matrix is smaller than `(m+1) × m` (except for the
    /// happy-breakdown case where exactly `m` vectors exist).
    pub(crate) fn new(
        kind: ProjectionKind,
        basis: Vec<Vec<f64>>,
        hess: DenseMatrix,
        beta: f64,
        m: usize,
    ) -> Self {
        assert!(m >= 1, "empty krylov decomposition");
        assert!(
            basis.len() == m || basis.len() == m + 1,
            "basis size mismatch"
        );
        assert!(
            hess.rows() >= m && hess.cols() >= m,
            "hessenberg size mismatch"
        );
        KrylovDecomposition {
            kind,
            basis,
            hess,
            beta,
            m,
        }
    }

    /// Subspace dimension `m`.
    pub fn dimension(&self) -> usize {
        self.m
    }

    /// Norm of the vector the subspace was built from.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The projection kind used to build this subspace.
    pub fn kind(&self) -> ProjectionKind {
        self.kind
    }

    /// The `(m+1) × m` (or `m × m` on happy breakdown) Hessenberg matrix.
    pub fn hessenberg(&self) -> &DenseMatrix {
        &self.hess
    }

    /// The orthonormal basis vectors (length `n` each).
    pub fn basis(&self) -> &[Vec<f64>] {
        &self.basis
    }

    /// Consumes the decomposition, handing back its basis vectors so a
    /// workspace (see `MevpWorkspace::recycle`) can reuse their storage.
    pub fn into_basis(self) -> Vec<Vec<f64>> {
        self.basis
    }

    /// The square `m × m` leading block of the Hessenberg matrix.
    pub fn hm(&self) -> DenseMatrix {
        self.hess.submatrix(self.m, self.m)
    }

    /// The subdiagonal element `h_{m+1,m}` (zero on happy breakdown).
    pub fn h_next(&self) -> f64 {
        if self.hess.rows() > self.m {
            self.hess.get(self.m, self.m - 1)
        } else {
            0.0
        }
    }

    /// The `(m+1)`-th basis vector if it exists (it does not on happy breakdown).
    pub fn next_basis_vector(&self) -> Option<&[f64]> {
        if self.basis.len() > self.m {
            Some(&self.basis[self.m])
        } else {
            None
        }
    }

    /// The small matrix `S` such that `h·J` is approximated by `h·S` in the
    /// projected space.
    ///
    /// For the inverse and shift-invert kinds the Hessenberg matrix is
    /// regularized with a tiny stabilizing shift (`-δ·I`, `δ = 1e-12·‖H_m‖`)
    /// before inversion. A singular `C` makes `J⁻¹` singular; its (near-)zero
    /// eigenvalues correspond to algebraic constraints whose dynamics decay
    /// instantly, and the shift maps them onto very fast *stable* modes
    /// instead of letting rounding noise flip them into unstable ones. This
    /// is what lets the invert Krylov method skip the regularization step the
    /// paper criticizes in earlier work.
    ///
    /// # Errors
    ///
    /// Returns an error if the (regularized) Hessenberg matrix still cannot
    /// be inverted.
    pub fn projected_jacobian(&self) -> KrylovResult<DenseMatrix> {
        let hm = self.hm();
        let delta = 1e-12 * hm.norm_inf().max(f64::MIN_POSITIVE);
        projected_jacobian_of(self.kind, &hm, delta)
    }

    /// Evaluates `φ_order(h·J)·v ≈ β · V_m · φ_order(h·S) · e₁`.
    ///
    /// Changing `h` re-uses the same basis: only an `m × m` dense computation
    /// is performed (the scaling-invariance property).
    ///
    /// # Errors
    ///
    /// Propagates dense-kernel errors and unsupported φ orders.
    pub fn eval_phi(&self, order: usize, h: f64) -> KrylovResult<Vec<f64>> {
        let n = self.basis[0].len();
        let mut out = vec![0.0; n];
        self.eval_phi_into(order, h, &mut out)?;
        Ok(out)
    }

    /// As [`KrylovDecomposition::eval_phi`], writing into a caller-provided
    /// buffer of length `n` — the allocation-free variant for hot loops.
    ///
    /// # Errors
    ///
    /// Propagates dense-kernel errors and unsupported φ orders; returns a
    /// dimension error if `out` has the wrong length.
    pub fn eval_phi_into(&self, order: usize, h: f64, out: &mut [f64]) -> KrylovResult<()> {
        if out.len() != self.basis[0].len() {
            return Err(KrylovError::DimensionMismatch {
                expected: self.basis[0].len(),
                found: out.len(),
            });
        }
        let hm = self.hm();
        let mut y = Vec::with_capacity(self.m);
        phi_small_of(self.kind, &hm, self.beta, order, h, &mut y)?;
        self.lift_into(&y, out);
        Ok(())
    }

    /// Evaluates `e^{hJ}·v` (φ of order zero).
    ///
    /// # Errors
    ///
    /// Same as [`KrylovDecomposition::eval_phi`].
    pub fn eval_expv(&self, h: f64) -> KrylovResult<Vec<f64>> {
        self.eval_phi(0, h)
    }

    /// As [`KrylovDecomposition::eval_expv`], writing into a caller-provided
    /// buffer.
    ///
    /// # Errors
    ///
    /// Same as [`KrylovDecomposition::eval_phi_into`].
    pub fn eval_expv_into(&self, h: f64, out: &mut [f64]) -> KrylovResult<()> {
        self.eval_phi_into(0, h, out)
    }

    /// The small-space coefficient vector `β · φ_order(h·S) · e₁` (length `m`).
    ///
    /// # Errors
    ///
    /// Propagates dense-kernel errors and unsupported φ orders.
    pub fn eval_phi_small(&self, order: usize, h: f64) -> KrylovResult<Vec<f64>> {
        let hm = self.hm();
        let mut y = Vec::with_capacity(self.m);
        phi_small_of(self.kind, &hm, self.beta, order, h, &mut y)?;
        Ok(y)
    }

    /// Lifts a small-space vector back to the full space: `V_m · y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != m`.
    pub fn lift(&self, y: &[f64]) -> Vec<f64> {
        let n = self.basis[0].len();
        let mut out = vec![0.0; n];
        self.lift_into(y, &mut out);
        out
    }

    /// Lifts a small-space vector into a caller-provided buffer: `out = V_m·y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != m` or `out.len()` differs from the space
    /// dimension.
    pub fn lift_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.m, "lift: coefficient length mismatch");
        assert_eq!(
            out.len(),
            self.basis[0].len(),
            "lift: output length mismatch"
        );
        out.fill(0.0);
        for (j, yj) in y.iter().enumerate() {
            if *yj == 0.0 {
                continue;
            }
            for (o, b) in out.iter_mut().zip(self.basis[j].iter()) {
                *o += yj * b;
            }
        }
    }

    /// Residual norm of the matrix-exponential approximation at step size `h`.
    ///
    /// For the invert Krylov subspace this is the KCL/KVL residual of paper
    /// Eq. (22) up to the factor `‖G·v_{m+1}‖` which depends on the circuit
    /// matrices; this method returns the *scalar* part
    /// `β · |h_{m+1,m}| · |e_mᵀ · S_h-dependent term|`, and callers multiply by
    /// the norm they need. For the standard subspace it is Saad's classical
    /// posterior estimate.
    ///
    /// # Errors
    ///
    /// Propagates dense-kernel errors.
    pub fn residual_scalar(&self, h: f64) -> KrylovResult<f64> {
        let hnext = self.h_next();
        if hnext == 0.0 {
            return Ok(0.0);
        }
        let hm = self.hm();
        residual_scalar_of(self.kind, &hm, hnext, self.beta, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a trivially exact decomposition for a 1x1 "matrix" J = [j].
    fn scalar_decomposition(kind: ProjectionKind, j: f64) -> KrylovDecomposition {
        let hess = match kind {
            ProjectionKind::Direct => DenseMatrix::from_rows(&[&[j]]),
            ProjectionKind::Inverse => DenseMatrix::from_rows(&[&[1.0 / j]]),
            ProjectionKind::ShiftInvert { gamma } => {
                DenseMatrix::from_rows(&[&[1.0 / (1.0 - gamma * j)]])
            }
        };
        KrylovDecomposition::new(kind, vec![vec![1.0]], hess, 2.0, 1)
    }

    #[test]
    fn scalar_exponential_all_kinds() {
        let j = -3.0;
        let h = 0.25;
        for kind in [
            ProjectionKind::Direct,
            ProjectionKind::Inverse,
            ProjectionKind::ShiftInvert { gamma: 0.1 },
        ] {
            let d = scalar_decomposition(kind, j);
            let v = d.eval_expv(h).unwrap();
            assert!(
                (v[0] - 2.0 * (h * j).exp()).abs() < 1e-9,
                "kind {kind:?}: {} vs {}",
                v[0],
                2.0 * (h * j).exp()
            );
        }
    }

    #[test]
    fn scalar_phi1_matches_formula() {
        let j = -2.0;
        let h = 0.5;
        let d = scalar_decomposition(ProjectionKind::Inverse, j);
        let v = d.eval_phi(1, h).unwrap();
        let expected = 2.0 * ((h * j).exp() - 1.0) / (h * j);
        assert!((v[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn happy_breakdown_residual_is_zero() {
        let d = scalar_decomposition(ProjectionKind::Direct, -1.0);
        assert_eq!(d.h_next(), 0.0);
        assert_eq!(d.residual_scalar(1.0).unwrap(), 0.0);
        assert!(d.next_basis_vector().is_none());
    }

    #[test]
    fn accessors() {
        let d = scalar_decomposition(ProjectionKind::Inverse, -4.0);
        assert_eq!(d.dimension(), 1);
        assert_eq!(d.beta(), 2.0);
        assert_eq!(d.kind(), ProjectionKind::Inverse);
        assert_eq!(d.hm().get(0, 0), -0.25);
        assert_eq!(d.basis().len(), 1);
    }

    #[test]
    fn rescaling_h_changes_only_the_small_problem() {
        let d = scalar_decomposition(ProjectionKind::Inverse, -1.5);
        let a = d.eval_expv(0.1).unwrap()[0];
        let b = d.eval_expv(0.2).unwrap()[0];
        assert!((a - 2.0 * (-0.15_f64).exp()).abs() < 1e-9);
        assert!((b - 2.0 * (-0.3_f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn into_variants_match_allocating_versions() {
        let d = scalar_decomposition(ProjectionKind::Inverse, -2.5);
        let alloc = d.eval_phi(1, 0.3).unwrap();
        let mut buf = vec![42.0; 1];
        d.eval_phi_into(1, 0.3, &mut buf).unwrap();
        assert_eq!(alloc, buf);
        let mut buf = vec![0.0; 1];
        d.eval_expv_into(0.3, &mut buf).unwrap();
        assert_eq!(d.eval_expv(0.3).unwrap(), buf);
        // Wrong output length is rejected.
        let mut bad = vec![0.0; 2];
        assert!(d.eval_expv_into(0.3, &mut bad).is_err());
    }

    #[test]
    fn into_basis_returns_vectors() {
        let d = scalar_decomposition(ProjectionKind::Direct, -1.0);
        let basis = d.into_basis();
        assert_eq!(basis, vec![vec![1.0]]);
    }
}
