//! MEVP via the **invert Krylov subspace** (paper Sec. IV, Algorithm 1).
//!
//! The subspace `K_m(J⁻¹, v) = span{v, (-G⁻¹C)v, (-G⁻¹C)²v, …}` is built by
//! repeatedly solving with `G` — the conductance matrix, which in post-layout
//! circuits is far sparser and cheaper to factorize than `C` or `C/h + G`.
//! Convergence of the matrix exponential approximation is monitored with the
//! KCL/KVL residual of paper Eq. (22).

use exi_sparse::{vector, CsrMatrix, SparseLu};

use crate::arnoldi::ArnoldiProcess;
use crate::decomposition::ProjectionKind;
use crate::error::{KrylovError, KrylovResult};
use crate::mevp::{MevpOptions, MevpOutcome, MevpWorkspace};
use crate::operator::{InverseJacobianOperator, KrylovOperator};

/// Computes `e^{hJ}·v` with the invert Krylov subspace (Algorithm 1,
/// `MEVP_IKS`), where `J = -C⁻¹G` but only `G` is factorized.
///
/// The returned [`MevpOutcome::decomposition`] can be re-evaluated at other
/// step sizes and for φ₁/φ₂ without touching the large matrices again —
/// that is what makes step-size rejection cheap in the ER engine.
///
/// # Errors
///
/// * [`KrylovError::ZeroStartVector`] if `v` is zero.
/// * [`KrylovError::NotConverged`] if the Eq. (22) residual does not fall
///   below `options.tolerance` within `options.max_dimension`.
/// * Sparse kernel errors propagated from the `G` solves.
///
/// # Examples
///
/// ```
/// use exi_sparse::{SparseLu, TripletMatrix};
/// use exi_krylov::{mevp_invert_krylov, MevpOptions};
///
/// # fn main() -> Result<(), exi_krylov::KrylovError> {
/// // C = diag(1, 2), G = diag(1, 1): J = -C^{-1}G = diag(-1, -0.5).
/// let mut c = TripletMatrix::new(2, 2);
/// c.push(0, 0, 1.0);
/// c.push(1, 1, 2.0);
/// let c = c.to_csr();
/// let mut g = TripletMatrix::new(2, 2);
/// g.push(0, 0, 1.0);
/// g.push(1, 1, 1.0);
/// let g = g.to_csr();
/// let g_lu = SparseLu::factorize(&g)?;
/// let out = mevp_invert_krylov(&c, &g, &g_lu, &[1.0, 1.0], 0.3, &MevpOptions::default())?;
/// assert!((out.mevp[0] - (-0.3f64).exp()).abs() < 1e-7);
/// assert!((out.mevp[1] - (-0.15f64).exp()).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
pub fn mevp_invert_krylov(
    c: &CsrMatrix,
    g: &CsrMatrix,
    g_lu: &SparseLu,
    v: &[f64],
    h: f64,
    options: &MevpOptions,
) -> KrylovResult<MevpOutcome> {
    mevp_invert_krylov_with(c, g, g_lu, v, h, options, &mut MevpWorkspace::new())
}

/// As [`mevp_invert_krylov`], drawing all scratch storage from `ws` — the
/// allocation-free variant the transient engines run in their hot loop.
/// Recycle the returned decomposition with [`MevpWorkspace::recycle`] once it
/// is no longer needed.
///
/// # Errors
///
/// Same as [`mevp_invert_krylov`].
pub fn mevp_invert_krylov_with(
    c: &CsrMatrix,
    g: &CsrMatrix,
    g_lu: &SparseLu,
    v: &[f64],
    h: f64,
    options: &MevpOptions,
    ws: &mut MevpWorkspace,
) -> KrylovResult<MevpOutcome> {
    let op = InverseJacobianOperator::new(c, g_lu);
    if v.len() != op.dim() {
        return Err(KrylovError::DimensionMismatch {
            expected: op.dim(),
            found: v.len(),
        });
    }
    let mut process = ArnoldiProcess::new_in(v, options.max_dimension, ws)?;
    let mut last_residual = f64::INFINITY;
    while process.dimension() < options.max_dimension {
        process.step(&op, ws)?;
        if process.breakdown() {
            last_residual = 0.0;
            break;
        }
        if process.dimension() < options.min_dimension {
            continue;
        }
        // Eq. (22): ‖r_m(h)‖ = β · |h_{m+1,m}| · ‖G·v_{m+1}‖ · |e_mᵀ H_m⁻¹ e^{h H_m⁻¹} e₁|.
        let scalar = match process.residual_scalar(ProjectionKind::Inverse, h) {
            Ok(s) => s,
            // An ill-conditioned small Hessenberg early in the iteration is
            // not fatal; keep expanding the subspace.
            Err(KrylovError::Sparse(_)) => continue,
            Err(e) => return Err(e),
        };
        let gv_norm = match process.next_vector() {
            Some(vm1) => {
                let gv = ws.scratch_slice(g.rows());
                g.mul_vec_into(vm1, gv);
                vector::norm2(gv)
            }
            None => 0.0,
        };
        last_residual = scalar * gv_norm;
        if last_residual <= options.tolerance {
            break;
        }
    }
    if last_residual > options.tolerance && !options.allow_unconverged {
        return Err(KrylovError::NotConverged {
            max_dimension: process.dimension(),
            residual: last_residual,
            tolerance: options.tolerance,
        });
    }
    let dimension = process.dimension();
    let decomposition = process.into_decomposition_in(ProjectionKind::Inverse, ws);
    let mut mevp = ws.take_vec(v.len());
    decomposition.eval_expv_into(h, &mut mevp)?;
    Ok(MevpOutcome {
        mevp,
        decomposition,
        residual: last_residual,
        dimension,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_sparse::TripletMatrix;

    fn diag(vals: &[f64]) -> CsrMatrix {
        let mut t = TripletMatrix::new(vals.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            t.push(i, i, v);
        }
        t.to_csr()
    }

    fn tridiag(n: usize, diag_v: f64, off: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, diag_v);
            if i + 1 < n {
                t.push(i, i + 1, off);
                t.push(i + 1, i, off);
            }
        }
        t.to_csr()
    }

    #[test]
    fn matches_diagonal_exponential() {
        let c = diag(&[1.0, 2.0, 4.0]);
        let g = diag(&[1.0, 1.0, 1.0]);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let v = vec![1.0, -2.0, 0.5];
        let h = 0.4;
        let out = mevp_invert_krylov(&c, &g, &g_lu, &v, h, &MevpOptions::default()).unwrap();
        let lambdas = [-1.0, -0.5, -0.25];
        for i in 0..3 {
            let expected = v[i] * (h * lambdas[i]).exp();
            assert!(
                (out.mevp[i] - expected).abs() < 1e-6,
                "{} vs {expected}",
                out.mevp[i]
            );
        }
    }

    #[test]
    fn agrees_with_standard_krylov_on_nonsingular_c() {
        let n = 30;
        let c = tridiag(n, 2.0, 0.3);
        let g = tridiag(n, 1.5, -0.5);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let c_lu = SparseLu::factorize(&c).unwrap();
        let v: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let h = 0.1;
        let opts = MevpOptions {
            tolerance: 1e-9,
            ..MevpOptions::default()
        };
        let inv = mevp_invert_krylov(&c, &g, &g_lu, &v, h, &opts).unwrap();
        let std = crate::arnoldi::mevp_standard_krylov(&g, &c_lu, &v, h, &opts).unwrap();
        assert!(vector::max_abs_diff(&inv.mevp, &std.mevp) < 1e-6);
    }

    #[test]
    fn works_with_singular_c() {
        // Singular C (a zero row) would break the standard Krylov method,
        // which needs C⁻¹; the invert method only needs G⁻¹.
        let n = 4;
        let mut ct = TripletMatrix::new(n, n);
        ct.push(0, 0, 1.0);
        ct.push(1, 1, 2.0);
        // rows 2 and 3 have no capacitance at all.
        let c = ct.to_csr();
        let g = tridiag(n, 3.0, -1.0);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let v = vec![1.0, 1.0, 1.0, 1.0];
        let out = mevp_invert_krylov(&c, &g, &g_lu, &v, 1e-2, &MevpOptions::default()).unwrap();
        assert_eq!(out.mevp.len(), n);
        assert!(out.mevp.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn stiff_system_needs_fewer_dimensions_than_standard() {
        // Stiff C: capacitances spanning 6 orders of magnitude. The invert
        // subspace captures the slow (dominant) modes quickly.
        let n = 40;
        let cvals: Vec<f64> = (0..n)
            .map(|i| 10f64.powi(-((i % 7) as i32)) * 1e-12)
            .collect();
        let c = diag(&cvals);
        let g = tridiag(n, 1e-3, -2e-4);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let v = vec![1.0; n];
        let h = 1e-10;
        let opts = MevpOptions {
            tolerance: 1e-6,
            max_dimension: 60,
            ..MevpOptions::default()
        };
        let inv = mevp_invert_krylov(&c, &g, &g_lu, &v, h, &opts).unwrap();
        assert!(
            inv.dimension < 40,
            "invert krylov dimension {}",
            inv.dimension
        );
        assert!(inv.mevp.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn decomposition_is_reusable_across_step_sizes() {
        let c = diag(&[1.0, 3.0]);
        let g = diag(&[2.0, 2.0]);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let v = vec![1.0, 1.0];
        let out = mevp_invert_krylov(&c, &g, &g_lu, &v, 0.2, &MevpOptions::default()).unwrap();
        // Halve the step: same decomposition, new evaluation.
        let half = out.decomposition.eval_expv(0.1).unwrap();
        assert!((half[0] - (-0.2_f64).exp()).abs() < 1e-7);
        assert!((half[1] - (-2.0 / 3.0 * 0.1_f64).exp()).abs() < 1e-7);
        // phi1 evaluation from the same subspace.
        let p1 = out.decomposition.eval_phi(1, 0.2).unwrap();
        let expected0 = ((-0.4_f64).exp() - 1.0) / (-0.4);
        assert!((p1[0] - expected0).abs() < 1e-7);
    }

    #[test]
    fn zero_vector_and_dimension_mismatch_rejected() {
        let c = diag(&[1.0, 1.0]);
        let g = diag(&[1.0, 1.0]);
        let g_lu = SparseLu::factorize(&g).unwrap();
        assert!(matches!(
            mevp_invert_krylov(&c, &g, &g_lu, &[0.0, 0.0], 0.1, &MevpOptions::default()),
            Err(KrylovError::ZeroStartVector)
        ));
        assert!(matches!(
            mevp_invert_krylov(&c, &g, &g_lu, &[1.0], 0.1, &MevpOptions::default()),
            Err(KrylovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn workspace_variant_matches_allocating_variant() {
        let n = 20;
        let c = tridiag(n, 2.0, 0.4);
        let g = tridiag(n, 1.0, -0.3);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let v: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) - 1.0).collect();
        let opts = MevpOptions::default();
        let plain = mevp_invert_krylov(&c, &g, &g_lu, &v, 0.05, &opts).unwrap();
        let mut ws = MevpWorkspace::new();
        let with_ws = mevp_invert_krylov_with(&c, &g, &g_lu, &v, 0.05, &opts, &mut ws).unwrap();
        assert_eq!(plain.mevp, with_ws.mevp);
        assert_eq!(plain.dimension, with_ws.dimension);
    }
}
