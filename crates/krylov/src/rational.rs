//! MEVP via a rational (shift-and-invert) Krylov subspace.
//!
//! The paper cites the rational Krylov subspace of the MATEX power-grid work
//! as the fastest-converging option, at the price of factorizing the shifted
//! matrix `C + γG` whenever the shift changes. It is included here as an
//! ablation baseline so the benchmark suite can reproduce the convergence
//! comparison that motivates choosing the invert subspace for general
//! nonlinear circuits.

use exi_sparse::{vector, CsrMatrix, SparseLu};

use crate::arnoldi::ArnoldiProcess;
use crate::decomposition::ProjectionKind;
use crate::error::{KrylovError, KrylovResult};
use crate::mevp::{MevpOptions, MevpOutcome, MevpWorkspace};
use crate::operator::ShiftInvertOperator;

/// Computes `e^{hJ}·v` with a shift-and-invert Krylov subspace built on
/// `(C + γG)⁻¹C`. The factorization of `C + γG` is performed internally.
///
/// Convergence is declared when two successive approximations differ by less
/// than `options.tolerance` relative to `‖v‖`. Because the Arnoldi basis is
/// orthonormal, that difference is evaluated in the small coefficient space
/// (`‖y_m − y_{m−1}‖₂ = ‖V_m y_m − V_{m−1} y_{m−1}‖₂`) — the large basis is
/// never touched during the iteration.
///
/// # Errors
///
/// * [`KrylovError::ZeroStartVector`] if `v` is zero.
/// * [`KrylovError::NotConverged`] if the tolerance is not met within
///   `options.max_dimension`.
/// * Sparse kernel errors from the factorization of `C + γG` (for example
///   when both `C` and `G` rows are zero).
///
/// # Examples
///
/// ```
/// use exi_sparse::TripletMatrix;
/// use exi_krylov::{mevp_rational_krylov, MevpOptions};
///
/// # fn main() -> Result<(), exi_krylov::KrylovError> {
/// let mut c = TripletMatrix::new(2, 2);
/// c.push(0, 0, 1.0);
/// c.push(1, 1, 1.0);
/// let c = c.to_csr();
/// let mut g = TripletMatrix::new(2, 2);
/// g.push(0, 0, 2.0);
/// g.push(1, 1, 4.0);
/// let g = g.to_csr();
/// let h = 0.1;
/// let out = mevp_rational_krylov(&c, &g, h / 2.0, &[1.0, 1.0], h, &MevpOptions::default())?;
/// assert!((out.mevp[0] - (-0.2f64).exp()).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn mevp_rational_krylov(
    c: &CsrMatrix,
    g: &CsrMatrix,
    gamma: f64,
    v: &[f64],
    h: f64,
    options: &MevpOptions,
) -> KrylovResult<MevpOutcome> {
    mevp_rational_krylov_with(c, g, gamma, v, h, options, &mut MevpWorkspace::new())
}

/// As [`mevp_rational_krylov`], drawing scratch storage from `ws`. The
/// factorization of `C + γG` is still performed internally (it depends on the
/// shift); recycle the returned decomposition with
/// [`MevpWorkspace::recycle`].
///
/// # Errors
///
/// Same as [`mevp_rational_krylov`].
pub fn mevp_rational_krylov_with(
    c: &CsrMatrix,
    g: &CsrMatrix,
    gamma: f64,
    v: &[f64],
    h: f64,
    options: &MevpOptions,
    ws: &mut MevpWorkspace,
) -> KrylovResult<MevpOutcome> {
    if v.len() != c.rows() {
        return Err(KrylovError::DimensionMismatch {
            expected: c.rows(),
            found: v.len(),
        });
    }
    let shifted = CsrMatrix::linear_combination(1.0, c, gamma, g).map_err(KrylovError::Sparse)?;
    let shifted_lu = SparseLu::factorize(&shifted)?;
    let op = ShiftInvertOperator::new(c, &shifted_lu);
    let kind = ProjectionKind::ShiftInvert { gamma };

    let mut process = ArnoldiProcess::new_in(v, options.max_dimension, ws)?;
    let vnorm = vector::norm2(v);
    let mut previous: Vec<f64> = Vec::new();
    let mut current: Vec<f64> = Vec::new();
    let mut have_previous = false;
    let mut last_residual = f64::INFINITY;
    while process.dimension() < options.max_dimension {
        process.step(&op, ws)?;
        match process.phi_small(kind, 0, h, &mut current) {
            Ok(()) => {}
            Err(KrylovError::Sparse(_)) => continue,
            Err(e) => return Err(e),
        };
        if process.breakdown() {
            last_residual = 0.0;
            break;
        }
        if have_previous {
            // ‖y_m − y_{m−1}‖₂ over the shared leading coefficients; the new
            // trailing coefficient counts in full.
            let mut diff2 = 0.0f64;
            for (i, &yi) in current.iter().enumerate() {
                let prev_i = previous.get(i).copied().unwrap_or(0.0);
                diff2 += (yi - prev_i) * (yi - prev_i);
            }
            last_residual = diff2.sqrt() / vnorm.max(f64::MIN_POSITIVE);
        }
        std::mem::swap(&mut previous, &mut current);
        have_previous = true;
        if process.dimension() >= options.min_dimension && last_residual <= options.tolerance {
            break;
        }
    }
    if last_residual > options.tolerance && !options.allow_unconverged {
        return Err(KrylovError::NotConverged {
            max_dimension: process.dimension(),
            residual: last_residual,
            tolerance: options.tolerance,
        });
    }
    let dimension = process.dimension();
    let decomposition = process.into_decomposition_in(kind, ws);
    let mut mevp = ws.take_vec(v.len());
    decomposition.eval_expv_into(h, &mut mevp)?;
    Ok(MevpOutcome {
        mevp,
        decomposition,
        residual: last_residual,
        dimension,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_sparse::TripletMatrix;

    fn diag(vals: &[f64]) -> CsrMatrix {
        let mut t = TripletMatrix::new(vals.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            t.push(i, i, v);
        }
        t.to_csr()
    }

    fn tridiag(n: usize, d: f64, off: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, d);
            if i + 1 < n {
                t.push(i, i + 1, off);
                t.push(i + 1, i, off);
            }
        }
        t.to_csr()
    }

    #[test]
    fn matches_diagonal_exponential() {
        let c = diag(&[1.0, 1.0, 2.0]);
        let g = diag(&[1.0, 3.0, 1.0]);
        let v = vec![1.0, -1.0, 2.0];
        let h = 0.2;
        let out = mevp_rational_krylov(&c, &g, h / 2.0, &v, h, &MevpOptions::default()).unwrap();
        let lambdas = [-1.0, -3.0, -0.5];
        for i in 0..3 {
            let expected = v[i] * (h * lambdas[i]).exp();
            assert!((out.mevp[i] - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn agrees_with_invert_krylov() {
        let n = 25;
        let c = tridiag(n, 3.0, 0.4);
        let g = tridiag(n, 2.0, -0.7);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let v: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) - 1.5).collect();
        let h = 0.05;
        let opts = MevpOptions {
            tolerance: 1e-9,
            ..MevpOptions::default()
        };
        let rat = mevp_rational_krylov(&c, &g, h / 2.0, &v, h, &opts).unwrap();
        let inv = crate::invert::mevp_invert_krylov(&c, &g, &g_lu, &v, h, &opts).unwrap();
        assert!(vector::max_abs_diff(&rat.mevp, &inv.mevp) < 1e-6);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let c = diag(&[1.0, 1.0]);
        let g = diag(&[1.0, 1.0]);
        assert!(matches!(
            mevp_rational_krylov(&c, &g, 0.1, &[1.0], 0.1, &MevpOptions::default()),
            Err(KrylovError::DimensionMismatch { .. })
        ));
    }
}
