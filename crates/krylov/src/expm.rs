//! Dense matrix exponential via Padé approximation with scaling and squaring.
//!
//! The Krylov methods reduce the large sparse problem `e^{hJ} v` to the
//! exponential of a small (typically `m ≤ 60`) dense matrix. That small
//! exponential is computed here with the degree-13 Padé approximant and
//! scaling-and-squaring (Higham's method, the same algorithm behind MATLAB's
//! `expm` which the paper's reference implementation relies on).

use exi_sparse::DenseMatrix;

use crate::error::{KrylovError, KrylovResult};

/// Coefficients of the degree-13 Padé approximant to the exponential.
const PADE13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// Threshold on the 1-norm below which the degree-13 approximant is accurate
/// without scaling (Higham 2005).
const THETA13: f64 = 5.371920351148152;

/// Computes the matrix exponential `e^A` of a square dense matrix.
///
/// # Errors
///
/// Returns [`KrylovError::Sparse`] wrapping a `NotSquare` error if `a` is not
/// square, or a `Singular` error if the Padé denominator cannot be inverted
/// (which does not happen for finite input).
///
/// # Examples
///
/// ```
/// use exi_sparse::DenseMatrix;
/// use exi_krylov::expm;
///
/// # fn main() -> Result<(), exi_krylov::KrylovError> {
/// // exp of a diagonal matrix is the element-wise exp of the diagonal.
/// let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, -2.0]]);
/// let e = expm(&a)?;
/// assert!((e.get(0, 0) - 1.0_f64.exp()).abs() < 1e-12);
/// assert!((e.get(1, 1) - (-2.0_f64).exp()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &DenseMatrix) -> KrylovResult<DenseMatrix> {
    if a.rows() != a.cols() {
        return Err(KrylovError::Sparse(exi_sparse::SparseError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        }));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(DenseMatrix::zeros(0, 0));
    }
    let norm = a.norm_one();
    // Number of halvings so that the scaled norm falls below theta_13.
    let s = if norm > THETA13 {
        (norm / THETA13).log2().ceil().max(0.0) as u32
    } else {
        0
    };
    let scale = 0.5_f64.powi(s as i32);
    let a_scaled = a.scale(scale);

    let ident = DenseMatrix::identity(n);
    let a2 = a_scaled.matmul(&a_scaled);
    let a4 = a2.matmul(&a2);
    let a6 = a4.matmul(&a2);

    // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
    let u_inner = a6
        .matmul(
            &a6.scale(PADE13[13])
                .add(&a4.scale(PADE13[11]))
                .add(&a2.scale(PADE13[9])),
        )
        .add(&a6.scale(PADE13[7]))
        .add(&a4.scale(PADE13[5]))
        .add(&a2.scale(PADE13[3]))
        .add(&ident.scale(PADE13[1]));
    let u = a_scaled.matmul(&u_inner);
    // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
    let v = a6
        .matmul(
            &a6.scale(PADE13[12])
                .add(&a4.scale(PADE13[10]))
                .add(&a2.scale(PADE13[8])),
        )
        .add(&a6.scale(PADE13[6]))
        .add(&a4.scale(PADE13[4]))
        .add(&a2.scale(PADE13[2]))
        .add(&ident.scale(PADE13[0]));

    // Solve (V - U) X = (V + U) column by column.
    let denom = v.sub(&u);
    let numer = v.add(&u);
    let mut x = DenseMatrix::zeros(n, n);
    let mut col = vec![0.0; n];
    for j in 0..n {
        for (i, c) in col.iter_mut().enumerate() {
            *c = numer.get(i, j);
        }
        let sol = denom.solve(&col)?;
        for (i, &v) in sol.iter().enumerate() {
            x.set(i, j, v);
        }
    }
    // Undo the scaling by repeated squaring.
    for _ in 0..s {
        x = x.matmul(&x);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                best = best.max((a.get(i, j) - b.get(i, j)).abs());
            }
        }
        best
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = DenseMatrix::zeros(4, 4);
        let e = expm(&z).unwrap();
        assert!(max_abs_diff(&e, &DenseMatrix::identity(4)) < 1e-14);
    }

    #[test]
    fn exp_of_diagonal() {
        let a = DenseMatrix::from_rows(&[&[0.5, 0.0], &[0.0, -3.0]]);
        let e = expm(&a).unwrap();
        assert!((e.get(0, 0) - 0.5_f64.exp()).abs() < 1e-13);
        assert!((e.get(1, 1) - (-3.0_f64).exp()).abs() < 1e-13);
        assert!(e.get(0, 1).abs() < 1e-14);
    }

    #[test]
    fn exp_of_nilpotent_matches_series() {
        // N = [[0,1],[0,0]] so exp(N) = I + N exactly.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let e = expm(&a).unwrap();
        let expected = DenseMatrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert!(max_abs_diff(&e, &expected) < 1e-14);
    }

    #[test]
    fn exp_of_rotation_generator() {
        // A = [[0, -t],[t, 0]] gives a rotation matrix.
        let t = 0.7;
        let a = DenseMatrix::from_rows(&[&[0.0, -t], &[t, 0.0]]);
        let e = expm(&a).unwrap();
        assert!((e.get(0, 0) - t.cos()).abs() < 1e-13);
        assert!((e.get(1, 0) - t.sin()).abs() < 1e-13);
        assert!((e.get(0, 1) + t.sin()).abs() < 1e-13);
    }

    #[test]
    fn scaling_and_squaring_handles_large_norm() {
        // Large stable eigenvalue: e^{-50} ~ 2e-22.
        let a = DenseMatrix::from_rows(&[&[-50.0, 10.0], &[0.0, -30.0]]);
        let e = expm(&a).unwrap();
        assert!((e.get(0, 0) - (-50.0_f64).exp()).abs() < 1e-20);
        assert!((e.get(1, 1) - (-30.0_f64).exp()).abs() < 1e-18);
        // Upper-triangular structure preserved.
        assert!(e.get(1, 0).abs() < 1e-20);
    }

    #[test]
    fn exp_additivity_for_commuting_matrices() {
        // exp(A) * exp(A) = exp(2A).
        let a = DenseMatrix::from_rows(&[&[0.2, 0.1, 0.0], &[0.0, -0.3, 0.4], &[0.1, 0.0, 0.1]]);
        let e1 = expm(&a).unwrap();
        let e2 = expm(&a.scale(2.0)).unwrap();
        let prod = e1.matmul(&e1);
        assert!(max_abs_diff(&prod, &e2) < 1e-12);
    }

    #[test]
    fn non_square_rejected_and_empty_ok() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(expm(&a).is_err());
        let empty = DenseMatrix::zeros(0, 0);
        assert_eq!(expm(&empty).unwrap().rows(), 0);
    }
}
