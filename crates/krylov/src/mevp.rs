//! Options, outcome types and the reusable workspace shared by the MEVP
//! (matrix exponential and vector product) front-ends.

use exi_sparse::DenseMatrix;

use crate::decomposition::KrylovDecomposition;
use crate::operator::OperatorWorkspace;

/// Options controlling a Krylov MEVP computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MevpOptions {
    /// Residual tolerance ε used as the Arnoldi termination criterion
    /// (paper Algorithm 1 line 10; the experiments use `1e-7`).
    pub tolerance: f64,
    /// Hard cap on the subspace dimension.
    pub max_dimension: usize,
    /// Minimum dimension to build before testing convergence.
    pub min_dimension: usize,
    /// When `true`, hitting `max_dimension` without meeting the tolerance
    /// returns the best-effort approximation (with the achieved residual in
    /// the outcome) instead of an error. The transient engines enable this so
    /// a single hard Krylov step degrades accuracy instead of aborting a run.
    pub allow_unconverged: bool,
}

impl Default for MevpOptions {
    fn default() -> Self {
        MevpOptions {
            tolerance: 1e-7,
            max_dimension: 120,
            min_dimension: 2,
            allow_unconverged: false,
        }
    }
}

impl MevpOptions {
    /// Convenience constructor with an explicit tolerance and defaults for the
    /// remaining fields.
    pub fn with_tolerance(tolerance: f64) -> Self {
        MevpOptions {
            tolerance,
            ..MevpOptions::default()
        }
    }
}

/// Result of a converged MEVP computation.
#[derive(Debug, Clone)]
pub struct MevpOutcome {
    /// The approximation of `e^{hJ}·v`.
    pub mevp: Vec<f64>,
    /// The Krylov decomposition, reusable for other step sizes and φ orders.
    pub decomposition: KrylovDecomposition,
    /// Residual norm at termination.
    pub residual: f64,
    /// Subspace dimension used.
    pub dimension: usize,
}

/// Reusable arena for Krylov subspace construction.
///
/// Building an Arnoldi basis allocates one length-`n` vector per subspace
/// dimension plus the Hessenberg matrix and operator scratch buffers. In a
/// transient run the same sizes recur thousands of times, so the workspace
/// keeps a pool of retired basis vectors (see [`MevpWorkspace::recycle`]) and
/// hands them back out on the next build. In steady state a subspace build
/// performs **no** heap allocation proportional to the circuit size.
///
/// # Examples
///
/// ```
/// use exi_sparse::{SparseLu, TripletMatrix};
/// use exi_krylov::{mevp_invert_krylov_with, MevpOptions, MevpWorkspace};
///
/// # fn main() -> Result<(), exi_krylov::KrylovError> {
/// let mut c = TripletMatrix::new(2, 2);
/// c.push(0, 0, 1.0);
/// c.push(1, 1, 2.0);
/// let c = c.to_csr();
/// let mut g = TripletMatrix::new(2, 2);
/// g.push(0, 0, 1.0);
/// g.push(1, 1, 1.0);
/// let g = g.to_csr();
/// let g_lu = SparseLu::factorize(&g)?;
/// let mut ws = MevpWorkspace::new();
/// let out = mevp_invert_krylov_with(&c, &g, &g_lu, &[1.0, 1.0], 0.1, &MevpOptions::default(), &mut ws)?;
/// // Returning the decomposition's vectors lets the next build reuse them.
/// ws.recycle(out.decomposition);
/// let _ = mevp_invert_krylov_with(&c, &g, &g_lu, &[2.0, 1.0], 0.1, &MevpOptions::default(), &mut ws)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct MevpWorkspace {
    /// Retired basis vectors, ready for reuse.
    pool: Vec<Vec<f64>>,
    /// Retired Hessenberg storage.
    pub(crate) hess: Option<DenseMatrix>,
    /// Scratch for operator applications inside the Arnoldi loop.
    pub(crate) op: OperatorWorkspace,
    /// Scratch for residual-norm products (`G·v_{m+1}`).
    scratch: Vec<f64>,
    /// Number of fresh heap allocations the pool could not serve.
    allocations: usize,
}

impl MevpWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        MevpWorkspace::default()
    }

    /// Returns a decomposition's basis vectors to the pool so subsequent
    /// subspace builds can reuse their storage.
    pub fn recycle(&mut self, decomposition: KrylovDecomposition) {
        self.pool.extend(decomposition.into_basis());
    }

    /// Number of fresh length-`n` vector allocations performed because the
    /// pool was empty. In an engine's steady state this stops growing; it is
    /// surfaced in the run statistics as the hot-loop allocation counter.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Number of pooled vectors currently available.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Takes a zeroed length-`n` vector from the pool (or allocates one).
    pub(crate) fn take_vec(&mut self, n: usize) -> Vec<f64> {
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(n, 0.0);
                v
            }
            None => {
                self.allocations += 1;
                vec![0.0; n]
            }
        }
    }

    /// Returns a single retired vector (for example [`MevpOutcome::mevp`]
    /// once it has been consumed) to the pool directly.
    pub fn recycle_vec(&mut self, v: Vec<f64>) {
        self.pool.push(v);
    }

    /// Takes the pooled Hessenberg storage if it has the requested shape.
    pub(crate) fn take_hess(&mut self, rows: usize, cols: usize) -> DenseMatrix {
        match self.hess.take() {
            Some(mut h) if h.rows() == rows && h.cols() == cols => {
                h.fill(0.0);
                h
            }
            _ => {
                self.allocations += 1;
                DenseMatrix::zeros(rows, cols)
            }
        }
    }

    /// A scratch slice of length `n` with unspecified contents.
    pub(crate) fn scratch_slice(&mut self, n: usize) -> &mut [f64] {
        if self.scratch.len() < n {
            self.scratch.resize(n, 0.0);
        }
        &mut self.scratch[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let o = MevpOptions::default();
        assert_eq!(o.tolerance, 1e-7);
        assert!(o.max_dimension >= 100);
        let o = MevpOptions::with_tolerance(1e-9);
        assert_eq!(o.tolerance, 1e-9);
    }

    #[test]
    fn workspace_pool_reuses_vectors() {
        let mut ws = MevpWorkspace::new();
        let a = ws.take_vec(8);
        assert_eq!(ws.allocations(), 1);
        ws.recycle_vec(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take_vec(4);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|&x| x == 0.0));
        // Served from the pool: no new allocation counted.
        assert_eq!(ws.allocations(), 1);
    }

    #[test]
    fn workspace_hess_reuse_requires_matching_shape() {
        let mut ws = MevpWorkspace::new();
        let h = ws.take_hess(5, 4);
        ws.hess = Some(h);
        let h2 = ws.take_hess(5, 4);
        assert_eq!(ws.allocations(), 1);
        ws.hess = Some(h2);
        let _h3 = ws.take_hess(6, 5);
        assert_eq!(ws.allocations(), 2);
    }
}
