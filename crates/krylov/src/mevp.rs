//! Options and outcome types shared by the MEVP (matrix exponential and
//! vector product) front-ends.

use crate::decomposition::KrylovDecomposition;

/// Options controlling a Krylov MEVP computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MevpOptions {
    /// Residual tolerance ε used as the Arnoldi termination criterion
    /// (paper Algorithm 1 line 10; the experiments use `1e-7`).
    pub tolerance: f64,
    /// Hard cap on the subspace dimension.
    pub max_dimension: usize,
    /// Minimum dimension to build before testing convergence.
    pub min_dimension: usize,
    /// When `true`, hitting `max_dimension` without meeting the tolerance
    /// returns the best-effort approximation (with the achieved residual in
    /// the outcome) instead of an error. The transient engines enable this so
    /// a single hard Krylov step degrades accuracy instead of aborting a run.
    pub allow_unconverged: bool,
}

impl Default for MevpOptions {
    fn default() -> Self {
        MevpOptions { tolerance: 1e-7, max_dimension: 120, min_dimension: 2, allow_unconverged: false }
    }
}

impl MevpOptions {
    /// Convenience constructor with an explicit tolerance and defaults for the
    /// remaining fields.
    pub fn with_tolerance(tolerance: f64) -> Self {
        MevpOptions { tolerance, ..MevpOptions::default() }
    }
}

/// Result of a converged MEVP computation.
#[derive(Debug, Clone)]
pub struct MevpOutcome {
    /// The approximation of `e^{hJ}·v`.
    pub mevp: Vec<f64>,
    /// The Krylov decomposition, reusable for other step sizes and φ orders.
    pub decomposition: KrylovDecomposition,
    /// Residual norm at termination.
    pub residual: f64,
    /// Subspace dimension used.
    pub dimension: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let o = MevpOptions::default();
        assert_eq!(o.tolerance, 1e-7);
        assert!(o.max_dimension >= 100);
        let o = MevpOptions::with_tolerance(1e-9);
        assert_eq!(o.tolerance, 1e-9);
    }
}
