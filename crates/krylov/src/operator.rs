//! Operators whose Krylov subspaces approximate the matrix exponential.
//!
//! All methods in this crate build a subspace `span{v, Av, A²v, …}` for some
//! operator `A` derived from the linearized circuit matrices `C` (capacitance)
//! and `G` (conductance):
//!
//! * **Standard Krylov** uses `A = J = -C⁻¹G` and therefore must factorize
//!   `C` — problematic when `C` is singular or densely coupled (paper
//!   Sec. II-B).
//! * **Invert Krylov** uses `A = J⁻¹ = -G⁻¹C` and only ever factorizes `G`
//!   (paper Sec. IV-A, the method this framework is built on).
//! * **Rational (shift-and-invert) Krylov** uses `A = (I - γJ)⁻¹ = (C + γG)⁻¹C`
//!   (referenced baseline from MATEX, used here for ablations).

use exi_sparse::{CsrMatrix, SparseLu, SparseResult};

/// An operator that generates a Krylov subspace by repeated application.
pub trait KrylovOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Applies the operator to `v`.
    ///
    /// # Errors
    ///
    /// Returns a sparse-kernel error if an internal triangular solve fails.
    fn apply(&self, v: &[f64]) -> SparseResult<Vec<f64>>;
}

/// The circuit Jacobian `J = -C⁻¹ G` (standard Krylov subspace).
#[derive(Debug)]
pub struct JacobianOperator<'a> {
    g: &'a CsrMatrix,
    c_lu: &'a SparseLu,
}

impl<'a> JacobianOperator<'a> {
    /// Creates the operator from `G` and a factorization of `C`.
    pub fn new(g: &'a CsrMatrix, c_lu: &'a SparseLu) -> Self {
        JacobianOperator { g, c_lu }
    }
}

impl KrylovOperator for JacobianOperator<'_> {
    fn dim(&self) -> usize {
        self.g.rows()
    }

    fn apply(&self, v: &[f64]) -> SparseResult<Vec<f64>> {
        let gv = self.g.mul_vec(v);
        let mut x = self.c_lu.solve(&gv)?;
        for xi in x.iter_mut() {
            *xi = -*xi;
        }
        Ok(x)
    }
}

/// The inverse Jacobian `J⁻¹ = -G⁻¹ C` (invert Krylov subspace, paper Eq. 18).
#[derive(Debug)]
pub struct InverseJacobianOperator<'a> {
    c: &'a CsrMatrix,
    g_lu: &'a SparseLu,
}

impl<'a> InverseJacobianOperator<'a> {
    /// Creates the operator from `C` and a factorization of `G`.
    pub fn new(c: &'a CsrMatrix, g_lu: &'a SparseLu) -> Self {
        InverseJacobianOperator { c, g_lu }
    }
}

impl KrylovOperator for InverseJacobianOperator<'_> {
    fn dim(&self) -> usize {
        self.c.rows()
    }

    fn apply(&self, v: &[f64]) -> SparseResult<Vec<f64>> {
        let cv = self.c.mul_vec(v);
        let mut x = self.g_lu.solve(&cv)?;
        for xi in x.iter_mut() {
            *xi = -*xi;
        }
        Ok(x)
    }
}

/// The shift-and-invert operator `(I - γJ)⁻¹ = (C + γG)⁻¹ C`.
#[derive(Debug)]
pub struct ShiftInvertOperator<'a> {
    c: &'a CsrMatrix,
    shifted_lu: &'a SparseLu,
}

impl<'a> ShiftInvertOperator<'a> {
    /// Creates the operator from `C` and a factorization of `C + γG`.
    pub fn new(c: &'a CsrMatrix, shifted_lu: &'a SparseLu) -> Self {
        ShiftInvertOperator { c, shifted_lu }
    }
}

impl KrylovOperator for ShiftInvertOperator<'_> {
    fn dim(&self) -> usize {
        self.c.rows()
    }

    fn apply(&self, v: &[f64]) -> SparseResult<Vec<f64>> {
        let cv = self.c.mul_vec(v);
        self.shifted_lu.solve(&cv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_sparse::TripletMatrix;

    fn diag(vals: &[f64]) -> CsrMatrix {
        let mut t = TripletMatrix::new(vals.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            t.push(i, i, v);
        }
        t.to_csr()
    }

    #[test]
    fn jacobian_operator_applies_minus_cinv_g() {
        let c = diag(&[2.0, 4.0]);
        let g = diag(&[1.0, 2.0]);
        let c_lu = SparseLu::factorize(&c).unwrap();
        let op = JacobianOperator::new(&g, &c_lu);
        assert_eq!(op.dim(), 2);
        let y = op.apply(&[1.0, 1.0]).unwrap();
        assert!((y[0] + 0.5).abs() < 1e-14);
        assert!((y[1] + 0.5).abs() < 1e-14);
    }

    #[test]
    fn inverse_jacobian_operator_applies_minus_ginv_c() {
        let c = diag(&[2.0, 4.0]);
        let g = diag(&[1.0, 2.0]);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let op = InverseJacobianOperator::new(&c, &g_lu);
        let y = op.apply(&[1.0, 1.0]).unwrap();
        assert!((y[0] + 2.0).abs() < 1e-14);
        assert!((y[1] + 2.0).abs() < 1e-14);
    }

    #[test]
    fn shift_invert_operator_matches_formula() {
        let c = diag(&[1.0, 1.0]);
        let g = diag(&[2.0, 4.0]);
        let gamma = 0.5;
        let shifted = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu = SparseLu::factorize(&shifted).unwrap();
        let op = ShiftInvertOperator::new(&c, &lu);
        let y = op.apply(&[1.0, 1.0]).unwrap();
        // (1 + 0.5*2)^-1 = 0.5 ; (1 + 0.5*4)^-1 = 1/3
        assert!((y[0] - 0.5).abs() < 1e-14);
        assert!((y[1] - 1.0 / 3.0).abs() < 1e-14);
    }
}
