//! Operators whose Krylov subspaces approximate the matrix exponential.
//!
//! All methods in this crate build a subspace `span{v, Av, A²v, …}` for some
//! operator `A` derived from the linearized circuit matrices `C` (capacitance)
//! and `G` (conductance):
//!
//! * **Standard Krylov** uses `A = J = -C⁻¹G` and therefore must factorize
//!   `C` — problematic when `C` is singular or densely coupled (paper
//!   Sec. II-B).
//! * **Invert Krylov** uses `A = J⁻¹ = -G⁻¹C` and only ever factorizes `G`
//!   (paper Sec. IV-A, the method this framework is built on).
//! * **Rational (shift-and-invert) Krylov** uses `A = (I - γJ)⁻¹ = (C + γG)⁻¹C`
//!   (referenced baseline from MATEX, used here for ablations).
//!
//! Every operator application is one sparse matrix–vector product followed by
//! one pair of triangular solves — the innermost loop of the whole simulator.
//! [`KrylovOperator::apply_into`] therefore writes into caller-provided
//! buffers and draws its scratch space from an [`OperatorWorkspace`], so a
//! transient run performs no per-application allocation.

use exi_sparse::{CsrMatrix, LuWorkspace, SparseLu, SparseResult};

/// Reusable scratch buffers for [`KrylovOperator::apply_into`].
///
/// One workspace serves any number of operators (and dimensions); buffers
/// grow to the largest dimension seen and are reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct OperatorWorkspace {
    tmp: Vec<f64>,
    lu: LuWorkspace,
}

impl OperatorWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        OperatorWorkspace::default()
    }

    /// Splits the workspace into an intermediate-product slice of length `n`
    /// and the triangular-solve workspace.
    fn parts(&mut self, n: usize) -> (&mut [f64], &mut LuWorkspace) {
        if self.tmp.len() < n {
            self.tmp.resize(n, 0.0);
        }
        (&mut self.tmp[..n], &mut self.lu)
    }
}

/// An operator that generates a Krylov subspace by repeated application.
pub trait KrylovOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Applies the operator to `v`, writing the result into `out` and using
    /// `ws` for scratch space. Allocation-free once the workspace has grown
    /// to the operator dimension.
    ///
    /// # Errors
    ///
    /// Returns a sparse-kernel error if an internal triangular solve fails.
    fn apply_into(
        &self,
        v: &[f64],
        out: &mut [f64],
        ws: &mut OperatorWorkspace,
    ) -> SparseResult<()>;

    /// Applies the operator to `v`, allocating the result (convenience
    /// wrapper over [`KrylovOperator::apply_into`]).
    ///
    /// # Errors
    ///
    /// Same as [`KrylovOperator::apply_into`].
    fn apply(&self, v: &[f64]) -> SparseResult<Vec<f64>> {
        let mut out = vec![0.0; self.dim()];
        self.apply_into(v, &mut out, &mut OperatorWorkspace::new())?;
        Ok(out)
    }
}

/// The circuit Jacobian `J = -C⁻¹ G` (standard Krylov subspace).
#[derive(Debug)]
pub struct JacobianOperator<'a> {
    g: &'a CsrMatrix,
    c_lu: &'a SparseLu,
}

impl<'a> JacobianOperator<'a> {
    /// Creates the operator from `G` and a factorization of `C`.
    pub fn new(g: &'a CsrMatrix, c_lu: &'a SparseLu) -> Self {
        JacobianOperator { g, c_lu }
    }
}

impl KrylovOperator for JacobianOperator<'_> {
    fn dim(&self) -> usize {
        self.g.rows()
    }

    fn apply_into(
        &self,
        v: &[f64],
        out: &mut [f64],
        ws: &mut OperatorWorkspace,
    ) -> SparseResult<()> {
        let (tmp, lu_ws) = ws.parts(self.g.rows());
        self.g.mul_vec_into(v, tmp);
        self.c_lu.solve_into(tmp, out, lu_ws)?;
        for xi in out.iter_mut() {
            *xi = -*xi;
        }
        Ok(())
    }
}

/// The inverse Jacobian `J⁻¹ = -G⁻¹ C` (invert Krylov subspace, paper Eq. 18).
#[derive(Debug)]
pub struct InverseJacobianOperator<'a> {
    c: &'a CsrMatrix,
    g_lu: &'a SparseLu,
}

impl<'a> InverseJacobianOperator<'a> {
    /// Creates the operator from `C` and a factorization of `G`.
    pub fn new(c: &'a CsrMatrix, g_lu: &'a SparseLu) -> Self {
        InverseJacobianOperator { c, g_lu }
    }
}

impl KrylovOperator for InverseJacobianOperator<'_> {
    fn dim(&self) -> usize {
        self.c.rows()
    }

    fn apply_into(
        &self,
        v: &[f64],
        out: &mut [f64],
        ws: &mut OperatorWorkspace,
    ) -> SparseResult<()> {
        let (tmp, lu_ws) = ws.parts(self.c.rows());
        self.c.mul_vec_into(v, tmp);
        self.g_lu.solve_into(tmp, out, lu_ws)?;
        for xi in out.iter_mut() {
            *xi = -*xi;
        }
        Ok(())
    }
}

/// The shift-and-invert operator `(I - γJ)⁻¹ = (C + γG)⁻¹ C`.
#[derive(Debug)]
pub struct ShiftInvertOperator<'a> {
    c: &'a CsrMatrix,
    shifted_lu: &'a SparseLu,
}

impl<'a> ShiftInvertOperator<'a> {
    /// Creates the operator from `C` and a factorization of `C + γG`.
    pub fn new(c: &'a CsrMatrix, shifted_lu: &'a SparseLu) -> Self {
        ShiftInvertOperator { c, shifted_lu }
    }
}

impl KrylovOperator for ShiftInvertOperator<'_> {
    fn dim(&self) -> usize {
        self.c.rows()
    }

    fn apply_into(
        &self,
        v: &[f64],
        out: &mut [f64],
        ws: &mut OperatorWorkspace,
    ) -> SparseResult<()> {
        let (tmp, lu_ws) = ws.parts(self.c.rows());
        self.c.mul_vec_into(v, tmp);
        self.shifted_lu.solve_into(tmp, out, lu_ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_sparse::TripletMatrix;

    fn diag(vals: &[f64]) -> CsrMatrix {
        let mut t = TripletMatrix::new(vals.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            t.push(i, i, v);
        }
        t.to_csr()
    }

    #[test]
    fn jacobian_operator_applies_minus_cinv_g() {
        let c = diag(&[2.0, 4.0]);
        let g = diag(&[1.0, 2.0]);
        let c_lu = SparseLu::factorize(&c).unwrap();
        let op = JacobianOperator::new(&g, &c_lu);
        assert_eq!(op.dim(), 2);
        let y = op.apply(&[1.0, 1.0]).unwrap();
        assert!((y[0] + 0.5).abs() < 1e-14);
        assert!((y[1] + 0.5).abs() < 1e-14);
    }

    #[test]
    fn inverse_jacobian_operator_applies_minus_ginv_c() {
        let c = diag(&[2.0, 4.0]);
        let g = diag(&[1.0, 2.0]);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let op = InverseJacobianOperator::new(&c, &g_lu);
        let y = op.apply(&[1.0, 1.0]).unwrap();
        assert!((y[0] + 2.0).abs() < 1e-14);
        assert!((y[1] + 2.0).abs() < 1e-14);
    }

    #[test]
    fn shift_invert_operator_matches_formula() {
        let c = diag(&[1.0, 1.0]);
        let g = diag(&[2.0, 4.0]);
        let gamma = 0.5;
        let shifted = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu = SparseLu::factorize(&shifted).unwrap();
        let op = ShiftInvertOperator::new(&c, &lu);
        let y = op.apply(&[1.0, 1.0]).unwrap();
        // (1 + 0.5*2)^-1 = 0.5 ; (1 + 0.5*4)^-1 = 1/3
        assert!((y[0] - 0.5).abs() < 1e-14);
        assert!((y[1] - 1.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn apply_into_reuses_workspace_and_matches_apply() {
        let c = diag(&[2.0, 3.0, 5.0]);
        let g = diag(&[1.0, 2.0, 4.0]);
        let g_lu = SparseLu::factorize(&g).unwrap();
        let op = InverseJacobianOperator::new(&c, &g_lu);
        let mut ws = OperatorWorkspace::new();
        let mut out = vec![0.0; 3];
        for trial in 0..3 {
            let v = vec![1.0 + trial as f64, -1.0, 0.5];
            op.apply_into(&v, &mut out, &mut ws).unwrap();
            assert_eq!(out, op.apply(&v).unwrap(), "trial {trial}");
        }
    }
}
