//! # exi-krylov
//!
//! Matrix exponential, φ-function and Krylov-subspace kernels for the
//! `exi-sim` exponential-integrator circuit simulator (reproduction of Zhuang
//! et al., DAC 2015).
//!
//! The central operation of a matrix-exponential circuit simulator is the
//! **matrix exponential and vector product** (MEVP) `e^{hJ}·v` with
//! `J = -C⁻¹G`. Three Krylov-subspace flavours are provided:
//!
//! * [`mevp_invert_krylov`] — the paper's method (Algorithm 1, `MEVP_IKS`):
//!   builds `K_m(J⁻¹, v)` so that only `G` is factorized and stiff/singular
//!   `C` matrices are handled without regularization.
//! * [`mevp_standard_krylov`] — the prior-work formulation `K_m(J, v)`
//!   (requires `C⁻¹`), kept as an ablation baseline.
//! * [`mevp_rational_krylov`] — shift-and-invert subspace on `(C + γG)⁻¹C`,
//!   the fastest-converging but most expensive alternative.
//!
//! Every front-end returns a [`KrylovDecomposition`] that can be re-evaluated
//! for different step sizes `h` and φ orders without rebuilding the basis —
//! the scaling-invariance the ER engine relies on when it rejects a step.
//!
//! Each front-end also has a `*_with` variant taking a [`MevpWorkspace`]: an
//! arena of recycled basis vectors, Hessenberg storage and operator scratch
//! buffers that makes repeated subspace builds (the transient engines' hot
//! loop) allocation-free in steady state.
//!
//! # Examples
//!
//! ```
//! use exi_sparse::{SparseLu, TripletMatrix};
//! use exi_krylov::{mevp_invert_krylov, MevpOptions};
//!
//! # fn main() -> Result<(), exi_krylov::KrylovError> {
//! // A two-node RC line.
//! let mut c = TripletMatrix::new(2, 2);
//! c.push(0, 0, 1e-12);
//! c.push(1, 1, 2e-12);
//! let c = c.to_csr();
//! let mut g = TripletMatrix::new(2, 2);
//! g.push(0, 0, 2e-3);
//! g.push(0, 1, -1e-3);
//! g.push(1, 0, -1e-3);
//! g.push(1, 1, 1e-3);
//! let g = g.to_csr();
//! let g_lu = SparseLu::factorize(&g)?;
//! let out = mevp_invert_krylov(&c, &g, &g_lu, &[1.0, 0.0], 1e-10, &MevpOptions::default())?;
//! assert_eq!(out.mevp.len(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod arnoldi;
pub mod decomposition;
pub mod error;
pub mod expm;
pub mod invert;
pub mod mevp;
pub mod operator;
pub mod phi;
pub mod rational;

pub use arnoldi::{mevp_standard_krylov, mevp_standard_krylov_with};
pub use decomposition::{KrylovDecomposition, ProjectionKind};
pub use error::{KrylovError, KrylovResult};
pub use expm::expm;
pub use invert::{mevp_invert_krylov, mevp_invert_krylov_with};
pub use mevp::{MevpOptions, MevpOutcome, MevpWorkspace};
pub use operator::{
    InverseJacobianOperator, JacobianOperator, KrylovOperator, OperatorWorkspace,
    ShiftInvertOperator,
};
pub use phi::{phi_matrices, phi_scalar, phi_vectors, MAX_PHI_ORDER};
pub use rational::{mevp_rational_krylov, mevp_rational_krylov_with};
