//! # exi-cli
//!
//! Command-line front-end for the `exi-sim` exponential-integrator circuit
//! simulator: parses SPICE decks through [`exi_netlist::deck`] and drives
//! them through the [`exi_sim::Simulator`] session and
//! [`exi_sim::BatchRunner`] batch machinery.
//!
//! Four subcommands:
//!
//! ```text
//! exi-cli run <deck.sp> [--method er|erc|be|tr] [--out csv|tsv]
//!                       [--output FILE] [--stream N] [--probe NODE]...
//! exi-cli sweep <deck.sp> --param NAME=v1,v2,... [--method ...] [--out ...]
//!                       [--threads N] [--output-dir DIR] [--stream N]
//!                       [--probe NODE]...
//! exi-cli serve [--addr HOST:PORT] [--workers N] [--queue N] ...
//! exi-cli client [<deck.sp>] --addr HOST:PORT [--output FILE] [--shutdown] ...
//! ```
//!
//! `run` executes every analysis card of the deck in one simulator session
//! (one symbolic LU analysis per matrix pattern, however many cards there
//! are) and streams the waveform as CSV/TSV — through
//! [`exi_sim::CsvObserver`] row by row, or via [`exi_sim::StreamingObserver`]
//! with `--stream N` for fixed-memory decimated output. `sweep` re-reads a
//! `.param`-templated deck once per parameter value and fans the members
//! across a [`exi_sim::BatchRunner`] worker pool, so same-structure members
//! share one compiled stamping plan and one symbolic analysis fleet-wide.
//! `serve` boots the resident [`exi_serve`] daemon (warm fleet caches,
//! wire-streamed waveforms; see `docs/SERVICE.md`) and `client` drives a
//! deck through one, producing bytes identical to a local `run`.
//!
//! The library surface mirrors the binary so everything is callable (and
//! doc-tested) in-process:
//!
//! ```
//! use exi_cli::{run_deck, OutputFormat, RunConfig};
//! use exi_netlist::parse_deck;
//!
//! # fn main() -> Result<(), exi_cli::CliError> {
//! let deck = parse_deck(
//!     "Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
//!      R1 in out 1k\n\
//!      C1 out 0 1f\n\
//!      .tran 1p 500p\n\
//!      .print v(out)\n",
//! )?;
//! let mut csv = Vec::new();
//! let summary = run_deck(&deck, &RunConfig::default(), &mut csv)?;
//! assert!(summary.rows > 5);
//! assert!(String::from_utf8(csv).unwrap().starts_with("time,out\n"));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod run;
pub mod service;
pub mod sweep;

use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;

use exi_netlist::NetlistError;
use exi_sim::{Method, SimError};

pub use run::{analysis_options, effective_probes, run_deck, tran_options, RunConfig, RunSummary};
pub use service::{
    fetch_stats, run_client, run_serve, shutdown_server, write_stats, ClientCommand, ClientConfig,
};
pub use sweep::{
    build_sweep_plan, expand_param_grid, member_label, members_from_template, run_sweep,
    write_job_waveform, SweepConfig, SweepSummary,
};

/// Errors surfaced by the command-line front-end.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is malformed; the message explains how.
    Usage(String),
    /// Deck parsing failed.
    Netlist(NetlistError),
    /// A simulation failed.
    Sim(SimError),
    /// File or stream I/O failed.
    Io(std::io::Error),
    /// The deck is well-formed but cannot be driven as requested
    /// (no analysis cards, unknown probe, every sweep member failed, …).
    Deck(String),
    /// An `exi-serve` daemon reported a job failure; carries the server's
    /// error class so the exit code matches a local run of the same deck.
    Remote {
        /// `usage`, `parse`, `convergence`, `io` or `internal`.
        class: String,
        /// The server's human-readable message.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Netlist(e) => write!(f, "deck error: {e}"),
            CliError::Sim(e) => write!(f, "simulation error: {e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Deck(m) => write!(f, "{m}"),
            CliError::Remote { class, message } => write!(f, "server error ({class}): {message}"),
        }
    }
}

impl CliError {
    /// Stable process exit code for this error class (documented in
    /// [`USAGE`]): `2` usage, `3` parse, `4` simulation/convergence, `5`
    /// i/o, `1` everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Netlist(_) => 3,
            CliError::Sim(_) => 4,
            CliError::Io(_) => 5,
            CliError::Deck(_) => 1,
            CliError::Remote { class, .. } => match class.as_str() {
                "usage" => 2,
                "parse" => 3,
                "convergence" => 4,
                "io" => 5,
                _ => 1,
            },
        }
    }

    /// Machine-readable failure class, used by `--error-format json`.
    pub fn class(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::Netlist(_) => "parse",
            CliError::Sim(_) => "convergence",
            CliError::Io(_) => "io",
            CliError::Deck(_) => "internal",
            CliError::Remote { class, .. } => match class.as_str() {
                "usage" => "usage",
                "parse" => "parse",
                "convergence" => "convergence",
                "io" => "io",
                _ => "internal",
            },
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Netlist(e) => Some(e),
            CliError::Sim(e) => Some(e),
            CliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// How `run_main` reports errors on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorFormat {
    /// `exi-cli: <message>` lines.
    #[default]
    Text,
    /// One JSON object per error:
    /// `{"error":{"class":…,"message":…,"exit_code":…}}`.
    Json,
}

impl ErrorFormat {
    /// Parses `text` / `json`.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for anything else.
    pub fn parse(s: &str) -> CliResult<Self> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(ErrorFormat::Text),
            "json" => Ok(ErrorFormat::Json),
            other => Err(CliError::Usage(format!(
                "unknown error format '{other}' (expected text or json)"
            ))),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `error` for stderr in the requested format. The JSON form is a
/// single line so scripts can parse it with one `json.loads`.
pub fn render_error(error: &CliError, format: ErrorFormat) -> String {
    match format {
        ErrorFormat::Text => format!("exi-cli: {error}"),
        ErrorFormat::Json => format!(
            "{{\"error\":{{\"class\":\"{}\",\"message\":\"{}\",\"exit_code\":{}}}}}",
            error.class(),
            json_escape(&error.to_string()),
            error.exit_code(),
        ),
    }
}

impl From<NetlistError> for CliError {
    fn from(e: NetlistError) -> Self {
        CliError::Netlist(e)
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        CliError::Sim(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Result alias for this crate.
pub type CliResult<T> = Result<T, CliError>;

/// Waveform output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Comma-separated values.
    #[default]
    Csv,
    /// Tab-separated values.
    Tsv,
}

impl OutputFormat {
    /// The column delimiter of this format.
    pub fn delimiter(self) -> char {
        match self {
            OutputFormat::Csv => ',',
            OutputFormat::Tsv => '\t',
        }
    }

    /// Parses `csv` / `tsv`.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for anything else.
    pub fn parse(s: &str) -> CliResult<Self> {
        match s.to_ascii_lowercase().as_str() {
            "csv" => Ok(OutputFormat::Csv),
            "tsv" => Ok(OutputFormat::Tsv),
            other => Err(CliError::Usage(format!(
                "unknown output format '{other}' (expected csv or tsv)"
            ))),
        }
    }
}

/// Parses a `--method` value: `er`, `erc`/`er-c`, `be`/`benr`, `tr`/`trnr`.
///
/// # Errors
///
/// [`CliError::Usage`] for an unknown method name.
pub fn parse_method(s: &str) -> CliResult<Method> {
    match s.to_ascii_lowercase().as_str() {
        "er" => Ok(Method::ExponentialRosenbrock),
        "erc" | "er-c" => Ok(Method::ExponentialRosenbrockCorrected),
        "be" | "benr" => Ok(Method::BackwardEuler),
        "tr" | "trnr" | "trap" => Ok(Method::Trapezoidal),
        other => Err(CliError::Usage(format!(
            "unknown method '{other}' (expected er, erc, be or tr)"
        ))),
    }
}

/// The usage text printed on `--help` and usage errors.
pub const USAGE: &str = "\
exi-cli — SPICE-deck front-end for the exi-sim circuit simulator

USAGE:
    exi-cli run <deck.sp> [OPTIONS]
    exi-cli sweep <deck.sp> --param NAME=v1,v2,... [OPTIONS]
    exi-cli serve [SERVE OPTIONS]
    exi-cli client [<deck.sp>] --addr HOST:PORT [OPTIONS]

COMMON OPTIONS:
    --method <er|erc|be|tr>   integration method (default er)
    --out <csv|tsv>           waveform format (default csv)
    --stream <N>              fixed-memory decimated output, at most N points
    --probe <NODE>            record NODE (repeatable; default: the deck's
                              .print cards, else every node)
    --error-format <text|json>
                              stderr error rendering (default text); json
                              emits {\"error\":{\"class\",\"message\",\"exit_code\"}}

run OPTIONS:
    --output <FILE>           write the waveform to FILE instead of stdout

sweep OPTIONS:
    --param NAME=v1,v2,...    sweep values for a .param (repeatable; the
                              cartesian product of all lists is run)
    --threads <N>             batch worker threads (default: all cores)
    --output-dir <DIR>        one waveform file per member (default '.')
    --keep-going              exit 0 even when members failed; default exits
                              nonzero after writing the successful members
    --lanes <auto|off|K>      coalesce same-fingerprint members into value-
                              lane batches of up to K (auto = 8; default
                              off); waveforms are byte-identical at every
                              setting — lanes only change throughput

serve OPTIONS (the resident daemon; see docs/SERVICE.md):
    --addr <HOST:PORT>        listen address (default 127.0.0.1:0; the bound
                              address is printed on stdout at startup)
    --workers <N>             worker threads draining the job queue
    --queue <N>               job-queue capacity (full queue replies `busy`)
    --symbolic-cache <N>      warm symbolic-cache capacity; 0 = unbounded
    --plan-cache <N>          warm plan-cache capacity; 0 = unbounded
    --max-unknowns <N>        per-job unknown-count admission budget
    --max-est-nnz <N>         per-job estimated-nonzeros admission budget
    --max-declared-steps <N>  per-job declared .tran step admission budget
    --max-inflight-unknowns <N>
                              server-wide active-unknowns budget; 0 = off
    --default-deadline-ms <N> deadline for jobs that declare none; 0 = off
    --read-timeout-ms <N>     reap a connection whose frame stalls; 0 = off
    --idle-timeout-ms <N>     reap a connection idle between frames; 0 = off
    --write-stall-ms <N>      abandon writes blocked on a stalled client
    --respawn-limit <N>       worker respawns per window before degraded mode
    --shed-after-ms <N>       queue-full time before the overload ladder
                              sheds new decks (see 'Overload ladder' in
                              docs/SERVICE.md)

client OPTIONS (submit a deck to a running daemon):
    --addr <HOST:PORT>        daemon address (default 127.0.0.1:7878)
    --output <FILE>           write the waveform to FILE instead of stdout
    --id <NAME>               job id (default: the deck file stem)
    --decimate <N>            keep every N-th accepted row (default 1)
    --chunk-rows <N>          rows per streamed chunk (server default)
    --deadline-ms <N>         per-job wall-clock budget in milliseconds
                              (a server-reported failure exits with the
                              same code a local run would)
    --retries <N>             retry a refused connection or `busy` reply up
                              to N extra times with exponential backoff
                              (default 0 = fail on the first refusal)
    --retry-base-ms <N>       backoff base; attempt k sleeps base<<k ms
                              before reconnecting (default 100)
    --stats                   print the daemon's stats snapshot as
                              `key: value` lines (combinable with a deck
                              run and/or --shutdown)
    --shutdown                ask the daemon to drain and exit afterwards;
                              without a deck, sends only the shutdown

EXIT CODES:
    0  success                3  deck parse error
    1  internal error         4  simulation/convergence error
    2  usage error            5  i/o error
";

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `exi-cli run`.
    Run {
        /// Deck path.
        deck: PathBuf,
        /// Execution settings.
        config: RunConfig,
        /// Waveform destination; `None` writes to stdout.
        output: Option<PathBuf>,
    },
    /// `exi-cli sweep`.
    Sweep {
        /// Deck path.
        deck: PathBuf,
        /// Execution settings.
        config: SweepConfig,
        /// Directory receiving one waveform file per sweep member.
        output_dir: PathBuf,
    },
    /// `exi-cli serve`: run the resident daemon until a `shutdown` request.
    Serve {
        /// Daemon settings.
        config: exi_serve::ServeConfig,
    },
    /// `exi-cli client`: drive one deck through a running daemon.
    Client(ClientCommand),
    /// `exi-cli --help`.
    Help,
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// [`CliError::Usage`] describing the first problem found.
pub fn parse_args(args: &[String]) -> CliResult<Command> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Err(CliError::Usage(
            "missing subcommand (run, sweep, serve or client)".into(),
        ));
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "run" => parse_run_args(&mut it),
        "sweep" => parse_sweep_args(&mut it),
        "serve" => parse_serve_args(&mut it),
        "client" => parse_client_args(&mut it),
        other => Err(CliError::Usage(format!(
            "unknown subcommand '{other}' (expected run, sweep, serve or client)"
        ))),
    }
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> CliResult<&'a String> {
    it.next()
        .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
}

fn parse_stream(value: &str) -> CliResult<usize> {
    let n: usize = value
        .parse()
        .map_err(|_| CliError::Usage(format!("--stream: bad point count '{value}'")))?;
    if n < 2 {
        return Err(CliError::Usage(
            "--stream requires at least 2 points".into(),
        ));
    }
    Ok(n)
}

fn parse_run_args(it: &mut std::slice::Iter<'_, String>) -> CliResult<Command> {
    let mut deck: Option<PathBuf> = None;
    let mut config = RunConfig::default();
    let mut output = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--method" => config.method = parse_method(next_value(it, "--method")?)?,
            "--out" => config.format = OutputFormat::parse(next_value(it, "--out")?)?,
            "--output" => output = Some(PathBuf::from(next_value(it, "--output")?)),
            "--stream" => config.stream = Some(parse_stream(next_value(it, "--stream")?)?),
            "--probe" => config.probes.push(next_value(it, "--probe")?.clone()),
            // Validated here, applied by `run_main`'s pre-scan (errors of
            // this very parse must already render in the requested format).
            "--error-format" => {
                ErrorFormat::parse(next_value(it, "--error-format")?)?;
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown option '{flag}' for run")))
            }
            path if deck.is_none() => deck = Some(PathBuf::from(path)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument '{extra}'"
                )))
            }
        }
    }
    let deck = deck.ok_or_else(|| CliError::Usage("run: missing <deck.sp> path".into()))?;
    Ok(Command::Run {
        deck,
        config,
        output,
    })
}

fn parse_sweep_args(it: &mut std::slice::Iter<'_, String>) -> CliResult<Command> {
    let mut deck: Option<PathBuf> = None;
    let mut config = SweepConfig::default();
    let mut output_dir = PathBuf::from(".");
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--method" => config.method = parse_method(next_value(it, "--method")?)?,
            "--out" => config.format = OutputFormat::parse(next_value(it, "--out")?)?,
            "--threads" => {
                let v = next_value(it, "--threads")?;
                config.threads = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--threads: bad count '{v}'")))?;
            }
            "--output-dir" => output_dir = PathBuf::from(next_value(it, "--output-dir")?),
            "--stream" => config.stream = Some(parse_stream(next_value(it, "--stream")?)?),
            "--probe" => config.probes.push(next_value(it, "--probe")?.clone()),
            "--keep-going" => config.keep_going = true,
            "--lanes" => {
                let v = next_value(it, "--lanes")?;
                config.lanes = v
                    .parse()
                    .map_err(|e: String| CliError::Usage(format!("--lanes: {e}")))?;
            }
            "--error-format" => {
                ErrorFormat::parse(next_value(it, "--error-format")?)?;
            }
            "--param" => {
                let v = next_value(it, "--param")?;
                let Some((name, values)) = v.split_once('=') else {
                    return Err(CliError::Usage(format!(
                        "--param: expected NAME=v1,v2,..., got '{v}'"
                    )));
                };
                let values: Vec<String> = values
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if name.trim().is_empty() || values.is_empty() {
                    return Err(CliError::Usage(format!(
                        "--param: expected NAME=v1,v2,..., got '{v}'"
                    )));
                }
                let name = name.trim().to_string();
                // A repeated name would cross itself in the cartesian
                // product and the last value would silently win.
                if config
                    .params
                    .iter()
                    .any(|(existing, _)| existing.eq_ignore_ascii_case(&name))
                {
                    return Err(CliError::Usage(format!(
                        "--param: '{name}' given more than once; list its values as \
                         --param {name}=v1,v2,..."
                    )));
                }
                config.params.push((name, values));
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option '{flag}' for sweep"
                )))
            }
            path if deck.is_none() => deck = Some(PathBuf::from(path)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument '{extra}'"
                )))
            }
        }
    }
    let deck = deck.ok_or_else(|| CliError::Usage("sweep: missing <deck.sp> path".into()))?;
    if config.params.is_empty() {
        return Err(CliError::Usage(
            "sweep: at least one --param NAME=v1,v2,... is required".into(),
        ));
    }
    Ok(Command::Sweep {
        deck,
        config,
        output_dir,
    })
}

fn parse_positive(value: &str, flag: &str) -> CliResult<usize> {
    let n: usize = value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag}: bad count '{value}'")))?;
    if n == 0 {
        return Err(CliError::Usage(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

fn parse_nonnegative(value: &str, flag: &str) -> CliResult<usize> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag}: bad count '{value}'")))
}

fn parse_millis(value: &str, flag: &str) -> CliResult<u64> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag}: bad millisecond count '{value}'")))
}

fn parse_serve_args(it: &mut std::slice::Iter<'_, String>) -> CliResult<Command> {
    let mut config = exi_serve::ServeConfig::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = next_value(it, "--addr")?.clone(),
            "--workers" => {
                config.workers = parse_positive(next_value(it, "--workers")?, "--workers")?
            }
            "--queue" => {
                config.queue_capacity = parse_positive(next_value(it, "--queue")?, "--queue")?
            }
            "--chunk-rows" => {
                config.default_chunk_rows =
                    parse_positive(next_value(it, "--chunk-rows")?, "--chunk-rows")?
            }
            "--symbolic-cache" => {
                let v = next_value(it, "--symbolic-cache")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--symbolic-cache: bad count '{v}'")))?;
                config.symbolic_cache_capacity = (n > 0).then_some(n);
            }
            "--plan-cache" => {
                let v = next_value(it, "--plan-cache")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--plan-cache: bad count '{v}'")))?;
                config.plan_cache_capacity = (n > 0).then_some(n);
            }
            "--max-unknowns" => {
                config.budget.max_unknowns =
                    parse_positive(next_value(it, "--max-unknowns")?, "--max-unknowns")?
            }
            "--max-est-nnz" => {
                config.budget.max_est_nnz =
                    parse_positive(next_value(it, "--max-est-nnz")?, "--max-est-nnz")?
            }
            "--max-declared-steps" => {
                config.budget.max_declared_steps = parse_positive(
                    next_value(it, "--max-declared-steps")?,
                    "--max-declared-steps",
                )?
            }
            "--max-inflight-unknowns" => {
                config.max_inflight_unknowns = parse_nonnegative(
                    next_value(it, "--max-inflight-unknowns")?,
                    "--max-inflight-unknowns",
                )?
            }
            "--default-deadline-ms" => {
                config.default_deadline_ms = parse_millis(
                    next_value(it, "--default-deadline-ms")?,
                    "--default-deadline-ms",
                )?
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms =
                    parse_millis(next_value(it, "--read-timeout-ms")?, "--read-timeout-ms")?
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms =
                    parse_millis(next_value(it, "--idle-timeout-ms")?, "--idle-timeout-ms")?
            }
            "--write-stall-ms" => {
                config.write_stall_ms =
                    parse_millis(next_value(it, "--write-stall-ms")?, "--write-stall-ms")?
            }
            "--respawn-limit" => {
                config.respawn_limit =
                    parse_positive(next_value(it, "--respawn-limit")?, "--respawn-limit")?
            }
            "--shed-after-ms" => {
                let shed =
                    parse_millis(next_value(it, "--shed-after-ms")?, "--shed-after-ms")?.max(1);
                // Keep the ladder ordered when only the first rung is tuned.
                config.overload.shed_after_ms = shed;
                config.overload.cancel_after_ms = config.overload.cancel_after_ms.max(shed);
                config.overload.drain_after_ms = config
                    .overload
                    .drain_after_ms
                    .max(config.overload.cancel_after_ms);
            }
            "--error-format" => {
                ErrorFormat::parse(next_value(it, "--error-format")?)?;
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown option '{other}' for serve"
                )))
            }
        }
    }
    Ok(Command::Serve { config })
}

fn parse_client_args(it: &mut std::slice::Iter<'_, String>) -> CliResult<Command> {
    let mut deck: Option<PathBuf> = None;
    let mut config = ClientConfig::default();
    let mut output = None;
    let mut stats = false;
    let mut shutdown = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = next_value(it, "--addr")?.clone(),
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--method" => config.method = parse_method(next_value(it, "--method")?)?,
            "--out" => config.format = OutputFormat::parse(next_value(it, "--out")?)?,
            "--output" => output = Some(PathBuf::from(next_value(it, "--output")?)),
            "--probe" => config.probes.push(next_value(it, "--probe")?.clone()),
            "--id" => config.id = Some(next_value(it, "--id")?.clone()),
            "--decimate" => {
                config.decimate = parse_positive(next_value(it, "--decimate")?, "--decimate")?
            }
            "--chunk-rows" => {
                config.chunk_rows = Some(parse_positive(
                    next_value(it, "--chunk-rows")?,
                    "--chunk-rows",
                )?)
            }
            "--deadline-ms" => {
                let v = next_value(it, "--deadline-ms")?;
                config.deadline_ms = Some(v.parse().map_err(|_| {
                    CliError::Usage(format!("--deadline-ms: bad millisecond count '{v}'"))
                })?);
            }
            "--retries" => {
                let v = next_value(it, "--retries")?;
                config.retries = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--retries: bad count '{v}'")))?;
            }
            "--retry-base-ms" => {
                config.retry_base_ms =
                    parse_millis(next_value(it, "--retry-base-ms")?, "--retry-base-ms")?.max(1);
            }
            "--error-format" => {
                ErrorFormat::parse(next_value(it, "--error-format")?)?;
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown option '{flag}' for client"
                )))
            }
            path if deck.is_none() => deck = Some(PathBuf::from(path)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument '{extra}'"
                )))
            }
        }
    }
    if deck.is_none() && !shutdown && !stats {
        return Err(CliError::Usage(
            "client: missing <deck.sp> path (or --shutdown / --stats for a deckless request)"
                .into(),
        ));
    }
    Ok(Command::Client(ClientCommand {
        deck,
        config,
        output,
        stats,
        shutdown,
    }))
}

/// Executes a parsed command: `status` receives human-readable progress and
/// summaries (stdout in the binary); waveforms go to `--output`/
/// `--output-dir` files, or to `status` when `run` has no `--output`.
///
/// # Errors
///
/// Any [`CliError`]; partial sweep outputs may already be on disk.
pub fn execute(command: &Command, status: &mut dyn Write) -> CliResult<()> {
    match command {
        Command::Help => {
            status.write_all(USAGE.as_bytes())?;
            Ok(())
        }
        Command::Run {
            deck,
            config,
            output,
        } => {
            let parsed = exi_netlist::parse_deck_file(deck)?;
            let summary = match output {
                Some(path) => {
                    let mut file = std::io::BufWriter::new(File::create(path)?);
                    let summary = run_deck(&parsed, config, &mut file)?;
                    file.flush()?;
                    writeln!(
                        status,
                        "{}: {} analyses, {} rows -> {} ({} accepted steps, {} symbolic LU analyses)",
                        deck.display(),
                        summary.analyses,
                        summary.rows,
                        path.display(),
                        summary.stats.accepted_steps,
                        summary.stats.symbolic_analyses,
                    )?;
                    summary
                }
                None => run_deck(&parsed, config, status)?,
            };
            let _ = summary;
            Ok(())
        }
        Command::Sweep {
            deck,
            config,
            output_dir,
        } => {
            let summary = run_sweep(deck, config, output_dir)?;
            writeln!(
                status,
                "sweep of {}: {} members, {} failed, {} worker threads, {:.3} s wall",
                deck.display(),
                summary.members,
                summary.failed,
                summary.stats.worker_threads,
                summary.wall_time.as_secs_f64(),
            )?;
            writeln!(
                status,
                "cache reuse: {} symbolic analyses + {} shared hits, {} plan compilations + {} shared hits",
                summary.stats.symbolic_analyses,
                summary.stats.shared_symbolic_hits,
                summary.stats.plan_compilations,
                summary.stats.shared_plan_hits,
            )?;
            for line in &summary.member_lines {
                writeln!(status, "  {line}")?;
            }
            if summary.failed > 0 {
                if config.keep_going {
                    writeln!(
                        status,
                        "continuing past {} failed member(s) (--keep-going); \
                         successful waveforms are on disk",
                        summary.failed
                    )?;
                } else {
                    return Err(CliError::Deck(format!(
                        "{} of {} sweep members failed",
                        summary.failed, summary.members
                    )));
                }
            }
            Ok(())
        }
        Command::Serve { config } => run_serve(config.clone(), status),
        Command::Client(client) => {
            if let Some(deck) = &client.deck {
                match &client.output {
                    Some(path) => {
                        let mut file = std::io::BufWriter::new(File::create(path)?);
                        let rows = run_client(deck, &client.config, &mut file)?;
                        file.flush()?;
                        writeln!(
                            status,
                            "{}: {} rows -> {} (via {})",
                            deck.display(),
                            rows,
                            path.display(),
                            client.config.addr,
                        )?;
                    }
                    None => {
                        run_client(deck, &client.config, status)?;
                    }
                }
            }
            if client.stats {
                let stats = fetch_stats(&client.config.addr)?;
                write_stats(&stats, status)?;
            }
            if client.shutdown {
                shutdown_server(&client.config.addr)?;
                writeln!(status, "shutdown requested (via {})", client.config.addr)?;
            }
            Ok(())
        }
    }
}

/// Extracts the `--error-format` choice before full parsing, so parse
/// errors themselves render in the requested format. An invalid value is
/// left for [`parse_args`] to report.
fn detect_error_format(args: &[String]) -> ErrorFormat {
    args.windows(2)
        .find(|w| w[0] == "--error-format")
        .and_then(|w| ErrorFormat::parse(&w[1]).ok())
        .unwrap_or_default()
}

/// Binary entry point: parses and executes, mapping each error class to its
/// stable exit code (see [`CliError::exit_code`] and the `EXIT CODES`
/// section of [`USAGE`]).
pub fn run_main(args: &[String]) -> i32 {
    let error_format = detect_error_format(args);
    let command = match parse_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}", render_error(&e, error_format));
            if error_format == ErrorFormat::Text {
                eprintln!("{USAGE}");
            }
            return e.exit_code();
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match execute(&command, &mut out) {
        Ok(()) => 0,
        // A closed stdout (piping into `head`) is a normal way to stop
        // consuming a waveform, not an error.
        Err(CliError::Io(e)) if e.kind() == std::io::ErrorKind::BrokenPipe => 0,
        Err(e) => {
            eprintln!("{}", render_error(&e, error_format));
            e.exit_code()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn method_aliases_map_to_the_paper_methods() {
        assert_eq!(parse_method("er").unwrap(), Method::ExponentialRosenbrock);
        assert_eq!(
            parse_method("ERC").unwrap(),
            Method::ExponentialRosenbrockCorrected
        );
        assert_eq!(parse_method("er-c").unwrap(), parse_method("erc").unwrap());
        assert_eq!(parse_method("be").unwrap(), Method::BackwardEuler);
        assert_eq!(parse_method("benr").unwrap(), Method::BackwardEuler);
        assert_eq!(parse_method("tr").unwrap(), Method::Trapezoidal);
        assert_eq!(parse_method("trnr").unwrap(), Method::Trapezoidal);
        assert!(parse_method("rk4").is_err());
    }

    #[test]
    fn run_arguments_parse() {
        let cmd = parse_args(&s(&[
            "run", "deck.sp", "--method", "be", "--out", "tsv", "--stream", "64", "--probe", "out",
            "--probe", "mid", "--output", "wave.tsv",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                deck,
                config,
                output,
            } => {
                assert_eq!(deck, PathBuf::from("deck.sp"));
                assert_eq!(config.method, Method::BackwardEuler);
                assert_eq!(config.format, OutputFormat::Tsv);
                assert_eq!(config.stream, Some(64));
                assert_eq!(config.probes, vec!["out", "mid"]);
                assert_eq!(output, Some(PathBuf::from("wave.tsv")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sweep_arguments_parse() {
        let cmd = parse_args(&s(&[
            "sweep",
            "deck.sp",
            "--param",
            "rload=1k,2k,5k",
            "--param",
            "cap=1p,2p",
            "--threads",
            "2",
            "--output-dir",
            "out",
        ]))
        .unwrap();
        match cmd {
            Command::Sweep {
                config, output_dir, ..
            } => {
                assert_eq!(config.params.len(), 2);
                assert_eq!(config.params[0].0, "rload");
                assert_eq!(config.params[0].1, vec!["1k", "2k", "5k"]);
                assert_eq!(config.threads, 2);
                assert_eq!(output_dir, PathBuf::from("out"));
                assert_eq!(config.lanes, exi_sim::LanePolicy::Off);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lanes_flag_parses_every_spelling() {
        for (value, expected) in [
            ("off", exi_sim::LanePolicy::Off),
            ("auto", exi_sim::LanePolicy::Auto),
            ("6", exi_sim::LanePolicy::Fixed(6)),
        ] {
            let cmd = parse_args(&s(&[
                "sweep", "d.sp", "--param", "r=1k,2k", "--lanes", value,
            ]))
            .unwrap();
            match cmd {
                Command::Sweep { config, .. } => assert_eq!(config.lanes, expected, "{value}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(
            parse_args(&s(&[
                "sweep", "d.sp", "--param", "r=1k,2k", "--lanes", "wide"
            ])),
            Err(CliError::Usage(_))
        ));
        // run does not take --lanes; only sweep coalesces members.
        assert!(matches!(
            parse_args(&s(&["run", "d.sp", "--lanes", "8"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bad_arguments_are_usage_errors() {
        for bad in [
            vec!["frobnicate"],
            vec!["run"],
            vec!["run", "deck.sp", "--method", "rk4"],
            vec!["run", "deck.sp", "--stream", "one"],
            vec!["run", "deck.sp", "--stream", "1"],
            vec!["run", "deck.sp", "--wat"],
            vec!["run", "a.sp", "b.sp"],
            vec!["sweep", "deck.sp"],
            vec!["sweep", "deck.sp", "--param", "broken"],
            vec!["sweep", "deck.sp", "--param", "r="],
            // A repeated name would cross itself in the cartesian product.
            vec!["sweep", "deck.sp", "--param", "r=1k", "--param", "R=2k"],
            vec![],
        ] {
            let args = s(&bad);
            match parse_args(&args) {
                Err(CliError::Usage(_)) => {}
                other => panic!("{bad:?}: expected usage error, got {other:?}"),
            }
        }
        assert_eq!(parse_args(&s(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn exit_codes_and_classes_are_stable() {
        let cases: Vec<(CliError, i32, &str)> = vec![
            (CliError::Usage("x".into()), 2, "usage"),
            (CliError::Netlist(NetlistError::EmptyCircuit), 3, "parse"),
            (
                CliError::Sim(SimError::StepSizeUnderflow {
                    time: 0.0,
                    step: 1e-20,
                }),
                4,
                "convergence",
            ),
            (CliError::Io(std::io::Error::other("disk on fire")), 5, "io"),
            (CliError::Deck("x".into()), 1, "internal"),
        ];
        for (error, code, class) in cases {
            assert_eq!(error.exit_code(), code, "{error}");
            assert_eq!(error.class(), class, "{error}");
        }
    }

    #[test]
    fn remote_errors_mirror_the_local_taxonomy() {
        for (class, code) in [
            ("usage", 2),
            ("parse", 3),
            ("convergence", 4),
            ("io", 5),
            ("internal", 1),
            ("martian", 1),
        ] {
            let error = CliError::Remote {
                class: class.to_string(),
                message: "x".to_string(),
            };
            assert_eq!(error.exit_code(), code, "{class}");
            let expected = if error.exit_code() == 1 {
                "internal"
            } else {
                class
            };
            assert_eq!(error.class(), expected, "{class}");
        }
    }

    #[test]
    fn serve_and_client_arguments_parse() {
        let cmd = parse_args(&s(&[
            "serve",
            "--addr",
            "127.0.0.1:9100",
            "--workers",
            "3",
            "--queue",
            "4",
            "--symbolic-cache",
            "0",
            "--plan-cache",
            "8",
        ]))
        .unwrap();
        match cmd {
            Command::Serve { config } => {
                assert_eq!(config.addr, "127.0.0.1:9100");
                assert_eq!(config.workers, 3);
                assert_eq!(config.queue_capacity, 4);
                assert_eq!(config.symbolic_cache_capacity, None);
                assert_eq!(config.plan_cache_capacity, Some(8));
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&s(&[
            "client",
            "deck.sp",
            "--addr",
            "127.0.0.1:9100",
            "--method",
            "be",
            "--decimate",
            "4",
            "--deadline-ms",
            "1500",
            "--id",
            "my-job",
            "--output",
            "wave.csv",
        ]))
        .unwrap();
        match cmd {
            Command::Client(client) => {
                assert_eq!(client.deck, Some(PathBuf::from("deck.sp")));
                assert_eq!(client.config.addr, "127.0.0.1:9100");
                assert_eq!(client.config.method, Method::BackwardEuler);
                assert_eq!(client.config.decimate, 4);
                assert_eq!(client.config.deadline_ms, Some(1500));
                assert_eq!(client.config.id.as_deref(), Some("my-job"));
                assert_eq!(client.output, Some(PathBuf::from("wave.csv")));
                assert!(!client.shutdown);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A shutdown-only invocation needs no deck.
        match parse_args(&s(&["client", "--shutdown", "--addr", "127.0.0.1:9100"])).unwrap() {
            Command::Client(client) => {
                assert_eq!(client.deck, None);
                assert!(client.shutdown);
            }
            other => panic!("unexpected {other:?}"),
        }
        for bad in [
            vec!["client"],
            vec!["client", "deck.sp", "--decimate", "0"],
            vec!["client", "deck.sp", "--retries", "many"],
            vec!["serve", "--queue", "zero"],
            vec!["serve", "--read-timeout-ms", "soon"],
            vec!["serve", "deck.sp"],
        ] {
            match parse_args(&s(&bad)) {
                Err(CliError::Usage(_)) => {}
                other => panic!("{bad:?}: expected usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn hardening_flags_parse() {
        let cmd = parse_args(&s(&[
            "serve",
            "--max-declared-steps",
            "1000",
            "--max-inflight-unknowns",
            "0",
            "--default-deadline-ms",
            "250",
            "--read-timeout-ms",
            "200",
            "--idle-timeout-ms",
            "0",
            "--write-stall-ms",
            "100",
            "--respawn-limit",
            "2",
            "--shed-after-ms",
            "50",
        ]))
        .unwrap();
        match cmd {
            Command::Serve { config } => {
                assert_eq!(config.budget.max_declared_steps, 1000);
                assert_eq!(config.max_inflight_unknowns, 0);
                assert_eq!(config.default_deadline_ms, 250);
                assert_eq!(config.read_timeout_ms, 200);
                assert_eq!(config.idle_timeout_ms, 0);
                assert_eq!(config.write_stall_ms, 100);
                assert_eq!(config.respawn_limit, 2);
                assert_eq!(config.overload.shed_after_ms, 50);
                // Tuning only the first rung keeps the ladder ordered.
                assert!(config.overload.shed_after_ms <= config.overload.cancel_after_ms);
                assert!(config.overload.cancel_after_ms <= config.overload.drain_after_ms);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&s(&[
            "client",
            "deck.sp",
            "--retries",
            "3",
            "--retry-base-ms",
            "5",
            "--stats",
        ]))
        .unwrap();
        match cmd {
            Command::Client(client) => {
                assert_eq!(client.config.retries, 3);
                assert_eq!(client.config.retry_base_ms, 5);
                assert!(client.stats);
                assert!(!client.shutdown);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A stats-only invocation needs no deck.
        match parse_args(&s(&["client", "--stats", "--addr", "127.0.0.1:9100"])).unwrap() {
            Command::Client(client) => {
                assert_eq!(client.deck, None);
                assert!(client.stats);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Retry exhaustion against an address nothing listens on is a
    /// deterministic i/o failure: every attempt is refused, the backoff is
    /// bounded, and the exit code is the i/o code (5).
    #[test]
    fn client_retry_exhaustion_exits_with_the_io_code() {
        // Bind to get a port the kernel just proved free, then release it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let dir = scratch("retry-exhaustion");
        let deck = dir.join("rc.sp");
        std::fs::write(
            &deck,
            "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1f\n.tran 1p 50p\n.print v(out)\n",
        )
        .unwrap();
        let code = run_main(&s(&[
            "client",
            deck.to_str().unwrap(),
            "--addr",
            &addr,
            "--retries",
            "2",
            "--retry-base-ms",
            "1",
        ]));
        assert_eq!(code, 5, "exhausted retries surface the refused connection");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `client --stats` against a live daemon prints the hardening counters
    /// as stable `key: value` lines.
    #[test]
    fn client_stats_prints_hardening_counters() {
        let server = exi_serve::Server::bind(exi_serve::ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let daemon = std::thread::spawn(move || server.run());
        let command =
            parse_args(&s(&["client", "--stats", "--shutdown", "--addr", &addr])).unwrap();
        let mut out = Vec::new();
        execute(&command, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for line in [
            "jobs_rejected_budget: 0",
            "workers_respawned: 0",
            "connections_reaped: 0",
            "write_stalls: 0",
            "overload_stage: 0",
        ] {
            assert!(text.contains(line), "missing '{line}' in:\n{text}");
        }
        assert!(text.contains("shutdown requested"), "{text}");
        daemon.join().unwrap();
    }

    #[test]
    fn render_error_json_is_one_escaped_line() {
        let error = CliError::Deck("bad \"quote\"\nsecond line\ttab".into());
        let json = render_error(&error, ErrorFormat::Json);
        assert_eq!(json.lines().count(), 1, "{json}");
        assert!(
            json.starts_with("{\"error\":{\"class\":\"internal\""),
            "{json}"
        );
        assert!(json.contains("\\\"quote\\\""), "{json}");
        assert!(json.contains("\\n"), "{json}");
        assert!(json.contains("\\t"), "{json}");
        assert!(json.ends_with("\"exit_code\":1}}"), "{json}");
        let text = render_error(&error, ErrorFormat::Text);
        assert!(text.starts_with("exi-cli: "), "{text}");
    }

    #[test]
    fn error_format_parses_and_is_detected_pre_parse() {
        assert_eq!(ErrorFormat::parse("text").unwrap(), ErrorFormat::Text);
        assert_eq!(ErrorFormat::parse("JSON").unwrap(), ErrorFormat::Json);
        assert!(matches!(
            ErrorFormat::parse("yaml"),
            Err(CliError::Usage(_))
        ));
        // The pre-scan sees the flag no matter where it sits, so even
        // usage errors render in the requested format.
        assert_eq!(
            detect_error_format(&s(&["run", "x.sp", "--error-format", "json"])),
            ErrorFormat::Json
        );
        assert_eq!(detect_error_format(&s(&["run", "x.sp"])), ErrorFormat::Text);
        // An invalid value falls back to text here and is reported as a
        // usage error by the full parse.
        assert_eq!(
            detect_error_format(&s(&["run", "x.sp", "--error-format", "yaml"])),
            ErrorFormat::Text
        );
        assert!(matches!(
            parse_args(&s(&["run", "x.sp", "--error-format", "yaml"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn keep_going_flag_parses() {
        let with =
            parse_args(&s(&["sweep", "d.sp", "--param", "r=1k,2k", "--keep-going"])).unwrap();
        match with {
            Command::Sweep { config, .. } => assert!(config.keep_going),
            other => panic!("unexpected {other:?}"),
        }
        let without = parse_args(&s(&["sweep", "d.sp", "--param", "r=1k,2k"])).unwrap();
        match without {
            Command::Sweep { config, .. } => assert!(!config.keep_going),
            other => panic!("unexpected {other:?}"),
        }
        // run does not take --keep-going.
        assert!(matches!(
            parse_args(&s(&["run", "d.sp", "--keep-going"])),
            Err(CliError::Usage(_))
        ));
    }

    /// A scratch directory under the target-adjacent temp dir, unique per
    /// test to keep parallel runs apart.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exi-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn run_main_maps_failures_to_their_exit_codes() {
        // Usage error: 2.
        assert_eq!(run_main(&s(&["frobnicate"])), 2);
        // Unreadable/parse-failing deck: 3.
        assert_eq!(run_main(&s(&["run", "/nonexistent/deck.sp"])), 3);
        let dir = scratch("exit-codes");
        // Parse error in a real file: 3.
        let bad = dir.join("bad.sp");
        std::fs::write(&bad, "R1 in out\n.end\n").unwrap();
        assert_eq!(run_main(&s(&["run", bad.to_str().unwrap()])), 3);
        // Convergence/simulation error (floating node): 4, in both formats.
        let singular = dir.join("singular.sp");
        std::fs::write(
            &singular,
            "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1p\nCf float 0 1p\n.tran 1p 50p\n.end\n",
        )
        .unwrap();
        assert_eq!(run_main(&s(&["run", singular.to_str().unwrap()])), 4);
        assert_eq!(
            run_main(&s(&[
                "run",
                singular.to_str().unwrap(),
                "--error-format",
                "json"
            ])),
            4
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_keep_going_salvages_the_surviving_members() {
        let dir = scratch("keep-going");
        let deck = dir.join("sweep.sp");
        // Member step=100p violates h_init <= t_stop at simulation time —
        // a per-member failure that must not abort the whole sweep.
        std::fs::write(
            &deck,
            ".param step=1p\n\
             V1 in 0 DC 1\n\
             R1 in out 1k\n\
             C1 out 0 1p\n\
             .tran {step} 50p\n\
             .print v(out)\n\
             .end\n",
        )
        .unwrap();
        let out_strict = dir.join("strict");
        assert_eq!(
            run_main(&s(&[
                "sweep",
                deck.to_str().unwrap(),
                "--param",
                "step=1p,100p",
                "--output-dir",
                out_strict.to_str().unwrap(),
            ])),
            1,
            "a failed member is a nonzero exit by default"
        );
        let out_keep = dir.join("keep");
        assert_eq!(
            run_main(&s(&[
                "sweep",
                deck.to_str().unwrap(),
                "--param",
                "step=1p,100p",
                "--keep-going",
                "--output-dir",
                out_keep.to_str().unwrap(),
            ])),
            0,
            "--keep-going turns member failures into a success exit"
        );
        // The surviving member's waveform landed on disk; the failed one
        // produced no file.
        assert!(out_keep.join("step=1p.csv").exists());
        assert!(!out_keep.join("step=100p.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
