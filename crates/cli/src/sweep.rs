//! The `sweep` subcommand: fan a `.param`-templated deck across value lists
//! through the [`BatchRunner`] fleet machinery.

use std::io::Write;
use std::path::Path;
use std::time::Duration;

use exi_netlist::{parse_deck_file_with_params, parse_deck_with_params, Deck};
use exi_sim::{
    BatchJob, BatchPlan, BatchRunner, JobOutcome, JobOutput, LanePolicy, Method, RunStats,
};

use crate::run::{analysis_options, effective_probes};
use crate::{CliError, CliResult, OutputFormat};

/// Settings of one `exi-cli sweep` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Parameter value lists; the cartesian product defines the members.
    pub params: Vec<(String, Vec<String>)>,
    /// Integration method for every member.
    pub method: Method,
    /// Waveform format of the per-member output files.
    pub format: OutputFormat,
    /// Worker-thread count (`0` = all cores), forwarded to
    /// [`BatchRunner::worker_threads`].
    pub threads: usize,
    /// `Some(n)`: fixed-memory decimated capture per member.
    pub stream: Option<usize>,
    /// Probe overrides (same cascade as `run`).
    pub probes: Vec<String>,
    /// Exit successfully even when members failed (their waveforms are
    /// simply absent; failures stay listed in the member lines). The default
    /// reports a nonzero exit when any member failed.
    pub keep_going: bool,
    /// Value-lane coalescing policy (`--lanes auto|off|K`), forwarded to
    /// [`BatchRunner::lane_policy`]. Lanes change throughput only — member
    /// waveforms are byte-identical at every setting.
    pub lanes: LanePolicy,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            params: Vec::new(),
            method: Method::ExponentialRosenbrock,
            format: OutputFormat::Csv,
            threads: 0,
            stream: None,
            probes: Vec::new(),
            keep_going: false,
            lanes: LanePolicy::Off,
        }
    }
}

/// What one sweep did — per-member lines plus the merged fleet statistics
/// ([`RunStats::shared_symbolic_hits`] and
/// [`RunStats::shared_plan_hits`] show the cache pooling at work).
#[derive(Debug)]
pub struct SweepSummary {
    /// Number of sweep members executed.
    pub members: usize,
    /// Number of failed members.
    pub failed: usize,
    /// Merged batch statistics.
    pub stats: RunStats,
    /// Wall-clock duration of the batch.
    pub wall_time: Duration,
    /// One human-readable line per member, in submission order.
    pub member_lines: Vec<String>,
}

/// Expands `--param` value lists into the cartesian product of labelled
/// override sets, in deterministic (row-major) order.
///
/// # Examples
///
/// ```
/// let grid = exi_cli::expand_param_grid(&[
///     ("r".to_string(), vec!["1k".to_string(), "2k".to_string()]),
///     ("c".to_string(), vec!["1p".to_string()]),
/// ]);
/// assert_eq!(grid.len(), 2);
/// assert_eq!(grid[0], vec![
///     ("r".to_string(), "1k".to_string()),
///     ("c".to_string(), "1p".to_string()),
/// ]);
/// ```
pub fn expand_param_grid(params: &[(String, Vec<String>)]) -> Vec<Vec<(String, String)>> {
    let mut grid: Vec<Vec<(String, String)>> = vec![Vec::new()];
    for (name, values) in params {
        let mut next = Vec::with_capacity(grid.len() * values.len());
        for combo in &grid {
            for value in values {
                let mut extended = combo.clone();
                extended.push((name.clone(), value.clone()));
                next.push(extended);
            }
        }
        grid = next;
    }
    grid
}

/// The member label of one override set: `r=1k,c=1p`.
pub fn member_label(combo: &[(String, String)]) -> String {
    combo
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// A file-system-safe spelling of a member label.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '.' | '=') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Builds the [`BatchPlan`] for a list of labelled sweep members.
///
/// Every member must carry at least one `.tran` card (the first one is
/// run); probes follow the same cascade as `run`. Members typically come
/// from re-parsing one deck with different `.param` overrides, so their
/// circuits share a structural fingerprint and the batch pools one stamping
/// plan and one symbolic analysis for the whole fleet.
///
/// # Errors
///
/// [`CliError::Deck`] when a member has no `.tran` card.
///
/// # Examples
///
/// ```
/// use exi_cli::{build_sweep_plan, SweepConfig};
/// use exi_netlist::parse_deck_with_params;
/// use exi_sim::BatchRunner;
///
/// # fn main() -> Result<(), exi_cli::CliError> {
/// let template = ".param rload=1k\n\
///                 Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
///                 R1 in out {rload}\n\
///                 C1 out 0 1f\n\
///                 .tran 1p 500p\n\
///                 .print v(out)\n";
/// let members: Vec<(String, exi_netlist::Deck)> = ["1k", "2k", "5k"]
///     .iter()
///     .map(|v| {
///         let overrides = [("rload".to_string(), v.to_string())];
///         Ok((
///             format!("rload={v}"),
///             parse_deck_with_params(template, &overrides)?,
///         ))
///     })
///     .collect::<Result<_, exi_cli::CliError>>()?;
/// let plan = build_sweep_plan(&members, &SweepConfig::default())?;
/// let result = BatchRunner::new().worker_threads(2).run(&plan);
/// assert!(result.all_ok());
/// // Same structure, one symbolic analysis for the whole fleet — performed
/// // up front by the runner, so every member counts as a shared hit.
/// assert_eq!(result.stats.symbolic_analyses, 1);
/// assert_eq!(result.stats.shared_symbolic_hits, 3);
/// # Ok(())
/// # }
/// ```
pub fn build_sweep_plan(members: &[(String, Deck)], config: &SweepConfig) -> CliResult<BatchPlan> {
    let mut plan = BatchPlan::new();
    for (label, deck) in members {
        let tran = deck
            .analyses
            .iter()
            .find_map(|a| analysis_options(deck, a))
            .ok_or_else(|| CliError::Deck(format!("sweep member '{label}' has no .tran card")))?;
        let mut job = BatchJob::new(label.clone(), deck.circuit.clone(), config.method, tran);
        for probe in effective_probes(deck, &config.probes) {
            job = job.probe(probe);
        }
        if let Some(capacity) = config.stream {
            job = job.streaming(capacity);
        }
        plan.push(job);
    }
    Ok(plan)
}

/// Runs a sweep over the deck at `path`: one member per point of the
/// `--param` cartesian product, each re-parsed with its overrides, all
/// executed by one [`BatchRunner`] and written as
/// `<output_dir>/<label>.{csv,tsv}`.
///
/// # Errors
///
/// Parse errors of any member, I/O errors, or [`CliError::Deck`] for decks
/// without `.tran` cards. Member *simulation* failures do not abort the
/// sweep — they are counted in [`SweepSummary::failed`].
pub fn run_sweep(path: &Path, config: &SweepConfig, output_dir: &Path) -> CliResult<SweepSummary> {
    let grid = expand_param_grid(&config.params);
    let mut members = Vec::with_capacity(grid.len());
    for combo in &grid {
        let label = member_label(combo);
        let deck = parse_deck_file_with_params(path, combo)?;
        members.push((label, deck));
    }
    let plan = build_sweep_plan(&members, config)?;
    // Fail before the batch runs, not after minutes of simulation, if the
    // output directory cannot be created.
    std::fs::create_dir_all(output_dir)?;
    let runner = BatchRunner::new()
        .worker_threads(config.threads)
        .lane_policy(config.lanes);
    let result = runner.run(&plan);
    let extension = match config.format {
        OutputFormat::Csv => "csv",
        OutputFormat::Tsv => "tsv",
    };
    let mut member_lines = Vec::with_capacity(result.len());
    let mut taken = std::collections::HashSet::new();
    for outcome in &result.jobs {
        match &outcome.result {
            Ok(_) => {
                // Sanitization can collide (`a/b` and `a_b` both map to
                // `a_b`); suffix later members instead of overwriting.
                let base = sanitize(&outcome.label);
                let mut stem = base.clone();
                let mut n = 1usize;
                while !taken.insert(stem.clone()) {
                    n += 1;
                    stem = format!("{base}_{n}");
                }
                let file = output_dir.join(format!("{stem}.{extension}"));
                let mut writer = std::io::BufWriter::new(std::fs::File::create(&file)?);
                let rows = write_job_waveform(outcome, config.format, &mut writer)?;
                writer.flush()?;
                member_lines.push(format!(
                    "{}: {} rows -> {}",
                    outcome.label,
                    rows,
                    file.display()
                ));
            }
            Err(e) => member_lines.push(format!("{}: FAILED: {e}", outcome.label)),
        }
    }
    Ok(SweepSummary {
        members: result.len(),
        failed: result.failed(),
        stats: result.stats.clone(),
        wall_time: result.wall_time,
        member_lines,
    })
}

/// Writes a finished job's waveform (recorded or streamed) as
/// delimiter-separated rows, returning the data-row count.
///
/// # Errors
///
/// [`CliError::Deck`] for a failed job; I/O errors from the writer.
pub fn write_job_waveform(
    outcome: &JobOutcome,
    format: OutputFormat,
    out: &mut dyn Write,
) -> CliResult<usize> {
    let delimiter = format.delimiter();
    match &outcome.result {
        Ok(JobOutput::Recorded(result)) => {
            let labels: Vec<&str> = result.probes.iter().map(|p| p.label.as_str()).collect();
            crate::run::write_waveform_rows(
                &labels,
                result
                    .times
                    .iter()
                    .zip(&result.samples)
                    .map(|(&t, row)| (t, row.as_slice())),
                delimiter,
                out,
            )
        }
        Ok(JobOutput::Streamed(wave)) => {
            let labels: Vec<&str> = wave.probes.iter().map(|p| p.label.as_str()).collect();
            let np = wave.probes.len();
            crate::run::write_waveform_rows(
                &labels,
                wave.times
                    .iter()
                    .enumerate()
                    .map(|(k, &t)| (t, &wave.values[k * np..(k + 1) * np])),
                delimiter,
                out,
            )
        }
        Err(e) => Err(CliError::Deck(format!(
            "job '{}' failed: {e}",
            outcome.label
        ))),
    }
}

/// Parses one templated deck text per override set — the string-based twin
/// of [`run_sweep`]'s file loop, used by tests and doc examples.
///
/// # Errors
///
/// Parse errors of any member.
pub fn members_from_template(
    template: &str,
    grid: &[Vec<(String, String)>],
) -> CliResult<Vec<(String, Deck)>> {
    grid.iter()
        .map(|combo| {
            Ok((
                member_label(combo),
                parse_deck_with_params(template, combo)?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEMPLATE: &str = ".param rload=1k\n\
                            Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
                            R1 in out {rload}\n\
                            C1 out 0 1f\n\
                            .tran 1p 400p\n\
                            .print v(out)\n";

    #[test]
    fn param_grid_is_a_cartesian_product() {
        let grid = expand_param_grid(&[
            ("a".into(), vec!["1".into(), "2".into()]),
            ("b".into(), vec!["x".into(), "y".into(), "z".into()]),
        ]);
        assert_eq!(grid.len(), 6);
        assert_eq!(member_label(&grid[0]), "a=1,b=x");
        assert_eq!(member_label(&grid[5]), "a=2,b=z");
        // No params: a single empty member.
        assert_eq!(expand_param_grid(&[]).len(), 1);
    }

    #[test]
    fn sanitized_labels_are_file_system_safe() {
        assert_eq!(sanitize("r=1k,c/2"), "r=1k_c_2");
    }

    #[test]
    fn sweep_members_share_caches_and_write_waveforms() {
        let grid = expand_param_grid(&[(
            "rload".to_string(),
            vec!["1k".into(), "2k".into(), "5k".into()],
        )]);
        let members = members_from_template(TEMPLATE, &grid).unwrap();
        let plan = build_sweep_plan(&members, &SweepConfig::default()).unwrap();
        assert_eq!(plan.len(), 3);
        let result = BatchRunner::new().worker_threads(2).run(&plan);
        assert!(result.all_ok());
        assert_eq!(result.stats.symbolic_analyses, 1);
        // The runner pre-publishes the one G analysis, so every member —
        // the would-be pilot included — counts as a shared hit.
        assert_eq!(result.stats.shared_symbolic_hits, 3);
        assert_eq!(result.stats.plan_compilations, 3); // distinct resistances
        let mut out = Vec::new();
        let rows = write_job_waveform(&result.jobs[0], OutputFormat::Csv, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("time,out\n"));
        assert_eq!(text.lines().count(), rows + 1);
    }

    #[test]
    fn lanes_off_and_lanes_8_write_byte_identical_waveforms() {
        // Six members varying only the source waveform — one circuit
        // fingerprint, so `--lanes 8` coalesces all six into one lane batch.
        // The lane contract makes every member's waveform byte-identical to
        // its scalar run, detaches included, so the two sweeps must write
        // the same files.
        let template = ".param vlo=0\n\
                        Vin in 0 PULSE({vlo} 1 0 10p 10p 200p)\n\
                        R1 in out 1k\n\
                        C1 out 0 1f\n\
                        .tran 1p 400p\n\
                        .print v(out)\n";
        let params = vec![(
            "vlo".to_string(),
            ["0", "0.05", "0.1", "0.15", "0.2", "0.25"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<String>>(),
        )];
        assert_eq!(expand_param_grid(&params).len(), 6);
        let dir = std::env::temp_dir().join(format!("exi-cli-lanes-{}", std::process::id()));
        let deck_path = dir.join("sweep.sp");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&deck_path, template).unwrap();
        let mut outputs: Vec<Vec<(String, Vec<u8>)>> = Vec::new();
        for lanes in [LanePolicy::Off, LanePolicy::Fixed(8)] {
            let config = SweepConfig {
                params: params.clone(),
                method: Method::BackwardEuler,
                threads: 2,
                lanes,
                ..SweepConfig::default()
            };
            let out_dir = dir.join(format!("lanes-{lanes}"));
            let summary = run_sweep(&deck_path, &config, &out_dir).unwrap();
            assert_eq!(summary.members, 6);
            assert_eq!(summary.failed, 0);
            match lanes {
                LanePolicy::Off => assert_eq!(summary.stats.lane_batches, 0),
                _ => assert_eq!(summary.stats.lane_batches, 1),
            }
            let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&out_dir)
                .unwrap()
                .map(|entry| {
                    let path = entry.unwrap().path();
                    (
                        path.file_name().unwrap().to_string_lossy().into_owned(),
                        std::fs::read(&path).unwrap(),
                    )
                })
                .collect();
            files.sort();
            outputs.push(files);
        }
        let lanes_8 = outputs.pop().unwrap();
        let lanes_off = outputs.pop().unwrap();
        assert_eq!(lanes_off.len(), 6);
        assert_eq!(
            lanes_off, lanes_8,
            "--lanes off and --lanes 8 must write byte-identical member files"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn members_without_tran_cards_are_rejected() {
        let deck = exi_netlist::parse_deck("V1 a 0 DC 1\nR1 a 0 1k\n.op\n").unwrap();
        let e = build_sweep_plan(&[("only-op".to_string(), deck)], &SweepConfig::default())
            .unwrap_err();
        assert!(matches!(e, CliError::Deck(_)), "{e:?}");
    }

    #[test]
    fn streamed_sweep_members_bound_their_memory() {
        let grid = expand_param_grid(&[("rload".to_string(), vec!["1k".into()])]);
        let members = members_from_template(TEMPLATE, &grid).unwrap();
        let config = SweepConfig {
            stream: Some(8),
            ..SweepConfig::default()
        };
        let plan = build_sweep_plan(&members, &config).unwrap();
        let result = BatchRunner::new().worker_threads(1).run(&plan);
        assert!(result.all_ok());
        let streamed = result.jobs[0].streamed().expect("streamed sink");
        assert!(streamed.len() < 8);
        let mut out = Vec::new();
        let rows = write_job_waveform(&result.jobs[0], OutputFormat::Tsv, &mut out).unwrap();
        assert_eq!(rows, streamed.len());
        assert!(String::from_utf8(out).unwrap().starts_with("time\tout\n"));
    }
}
