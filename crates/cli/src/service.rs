//! The `serve` and `client` subcommands: run a resident `exi-serve` daemon,
//! or drive a deck through one and stream the waveform back.
//!
//! The client path is byte-compatible with `exi-cli run`: waveform values
//! arrive as preformatted 17-significant-digit strings and are written
//! verbatim, so `exi-cli client deck.sp` and `exi-cli run deck.sp` produce
//! identical files for the same single-`.tran` deck.

use std::io::Write;
use std::path::{Path, PathBuf};

use exi_serve::{Client, ClientError, RunEnd, RunRequest, ServeConfig, Server};

use crate::{CliError, CliResult, OutputFormat};

/// Settings of one `exi-cli client` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Integration method requested from the daemon.
    pub method: exi_sim::Method,
    /// Waveform format.
    pub format: OutputFormat,
    /// Probe overrides; empty means the deck's `.print` cards, else every
    /// node (resolved server-side through the same cascade as `run`).
    pub probes: Vec<String>,
    /// Keep every `decimate`-th accepted row (1 = every row).
    pub decimate: usize,
    /// Rows per chunk frame; `None` uses the server default.
    pub chunk_rows: Option<usize>,
    /// Per-job wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Job id; `None` derives one from the deck file name.
    pub id: Option<String>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7878".to_string(),
            method: exi_sim::Method::ExponentialRosenbrock,
            format: OutputFormat::Csv,
            probes: Vec::new(),
            decimate: 1,
            chunk_rows: None,
            deadline_ms: None,
            id: None,
        }
    }
}

/// Maps a daemon-reported failure class onto [`CliError::Remote`] so the
/// process exit code matches what a local `run` of the same deck would
/// produce.
fn remote_error(class: String, message: String) -> CliError {
    CliError::Remote { class, message }
}

/// Runs `deck_path` on the daemon at [`ClientConfig::addr`], writing the
/// streamed waveform to `waveform`. Returns the number of data rows.
///
/// # Errors
///
/// [`CliError::Io`] for connection/socket failures, [`CliError::Remote`]
/// for job failures reported by the daemon (carrying the server's error
/// class), [`CliError::Deck`] for `busy`/shutdown rejections and protocol
/// violations.
pub fn run_client(
    deck_path: &Path,
    config: &ClientConfig,
    waveform: &mut dyn Write,
) -> CliResult<usize> {
    let deck_text = std::fs::read_to_string(deck_path)?;
    let id = config.id.clone().unwrap_or_else(|| {
        deck_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "job".to_string())
    });
    let mut client = Client::connect(config.addr.as_str())?;
    let end = client
        .run_streaming(
            RunRequest {
                id,
                deck: deck_text,
                method: config.method,
                probes: config.probes.clone(),
                decimate: config.decimate,
                chunk_rows: config.chunk_rows,
                deadline_ms: config.deadline_ms,
            },
            waveform,
            config.format.delimiter(),
        )
        .map_err(|e| match e {
            ClientError::Io(e) => CliError::Io(e),
            other => CliError::Deck(other.to_string()),
        })?;
    match end {
        RunEnd::Done { rows, .. } => Ok(rows),
        RunEnd::Cancelled {
            reason,
            at_time,
            rows,
        } => Err(remote_error(
            "convergence".to_string(),
            format!("job cancelled ({reason}) at t={at_time} after {rows} rows"),
        )),
        RunEnd::Failed { class, message } => Err(remote_error(class, message)),
        RunEnd::Busy => Err(CliError::Deck(
            "server busy: job queue is full, try again later".to_string(),
        )),
        RunEnd::ShuttingDown => Err(CliError::Deck(
            "server is shutting down and did not accept the job".to_string(),
        )),
    }
}

/// Boots an `exi-serve` daemon in-process and blocks until a client sends a
/// `shutdown` request. Announces the bound address on `status` first (the
/// line scripts and CI wait for).
///
/// # Errors
///
/// [`CliError::Io`] for bind failures.
pub fn run_serve(config: ServeConfig, status: &mut dyn Write) -> CliResult<()> {
    let server = Server::bind(config)?;
    writeln!(status, "exi-serve listening on {}", server.local_addr()?)?;
    status.flush()?;
    let stats = server.run();
    writeln!(
        status,
        "exi-serve: drained and stopped — {} completed, {} failed, {} cancelled, {} rejected; \
         {} symbolic analyses + {} warm hits, {} plan compilations + {} warm hits",
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_cancelled,
        stats.jobs_rejected,
        stats.symbolic_analyses,
        stats.shared_symbolic_hits,
        stats.plan_compilations,
        stats.shared_plan_hits,
    )?;
    Ok(())
}

/// Requests a graceful daemon shutdown: already-admitted jobs drain to
/// completion, then the server exits and prints its drain summary.
///
/// # Errors
///
/// [`CliError::Io`] for connection failures, [`CliError::Deck`] for
/// protocol violations.
pub fn shutdown_server(addr: &str) -> CliResult<()> {
    let mut client = Client::connect(addr)?;
    client.shutdown().map_err(|e| match e {
        ClientError::Io(e) => CliError::Io(e),
        other => CliError::Deck(other.to_string()),
    })
}

/// Parsed `exi-cli client` command.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientCommand {
    /// Deck path; `None` is only valid with [`ClientCommand::shutdown`]
    /// (a shutdown-only invocation).
    pub deck: Option<PathBuf>,
    /// Connection and job settings.
    pub config: ClientConfig,
    /// Waveform destination; `None` writes to stdout.
    pub output: Option<PathBuf>,
    /// Send a graceful-shutdown request after the run (or on its own when
    /// no deck is given).
    pub shutdown: bool,
}
