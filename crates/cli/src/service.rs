//! The `serve` and `client` subcommands: run a resident `exi-serve` daemon,
//! or drive a deck through one and stream the waveform back.
//!
//! The client path is byte-compatible with `exi-cli run`: waveform values
//! arrive as preformatted 17-significant-digit strings and are written
//! verbatim, so `exi-cli client deck.sp` and `exi-cli run deck.sp` produce
//! identical files for the same single-`.tran` deck.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use exi_serve::{Client, ClientError, RunEnd, RunRequest, ServeConfig, Server, ServerStats};

use crate::{CliError, CliResult, OutputFormat};

/// Settings of one `exi-cli client` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Integration method requested from the daemon.
    pub method: exi_sim::Method,
    /// Waveform format.
    pub format: OutputFormat,
    /// Probe overrides; empty means the deck's `.print` cards, else every
    /// node (resolved server-side through the same cascade as `run`).
    pub probes: Vec<String>,
    /// Keep every `decimate`-th accepted row (1 = every row).
    pub decimate: usize,
    /// Rows per chunk frame; `None` uses the server default.
    pub chunk_rows: Option<usize>,
    /// Per-job wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Job id; `None` derives one from the deck file name.
    pub id: Option<String>,
    /// Extra attempts after a refused connection or a `busy` reply
    /// (0 = fail on the first refusal, the default).
    pub retries: u32,
    /// Base backoff in milliseconds; attempt `k` sleeps `base << k` before
    /// reconnecting (deterministic, no jitter).
    pub retry_base_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7878".to_string(),
            method: exi_sim::Method::ExponentialRosenbrock,
            format: OutputFormat::Csv,
            probes: Vec::new(),
            decimate: 1,
            chunk_rows: None,
            deadline_ms: None,
            id: None,
            retries: 0,
            retry_base_ms: 100,
        }
    }
}

/// Maps a daemon-reported failure class onto [`CliError::Remote`] so the
/// process exit code matches what a local `run` of the same deck would
/// produce.
fn remote_error(class: String, message: String) -> CliError {
    CliError::Remote { class, message }
}

/// One connect-and-submit attempt (the unit [`run_client`]'s retry loop
/// repeats).
fn attempt_run(
    deck_text: &str,
    id: &str,
    config: &ClientConfig,
    waveform: &mut dyn Write,
) -> CliResult<RunEnd> {
    let mut client = Client::connect(config.addr.as_str())?;
    client
        .run_streaming(
            RunRequest {
                id: id.to_string(),
                deck: deck_text.to_string(),
                method: config.method,
                probes: config.probes.clone(),
                decimate: config.decimate,
                chunk_rows: config.chunk_rows,
                deadline_ms: config.deadline_ms,
            },
            waveform,
            config.format.delimiter(),
        )
        .map_err(|e| match e {
            ClientError::Io(e) => CliError::Io(e),
            other => CliError::Deck(other.to_string()),
        })
}

/// The deterministic backoff before retry attempt `attempt` (0-based):
/// `retry_base_ms << attempt`, saturating.
fn backoff_delay(config: &ClientConfig, attempt: u32) -> Duration {
    Duration::from_millis(config.retry_base_ms.saturating_mul(1u64 << attempt.min(16)))
}

/// Runs `deck_path` on the daemon at [`ClientConfig::addr`], writing the
/// streamed waveform to `waveform`. Returns the number of data rows.
///
/// With [`ClientConfig::retries`] > 0, a refused connection or a `busy`
/// reply is retried with exponential backoff (`retry_base_ms << attempt`,
/// reconnecting each time). Both happen strictly before any waveform bytes
/// arrive, so a retry can never duplicate output; failures after streaming
/// starts are never retried.
///
/// # Errors
///
/// [`CliError::Io`] for connection/socket failures, [`CliError::Remote`]
/// for job failures reported by the daemon (carrying the server's error
/// class), [`CliError::Deck`] for `busy`/`rejected`/shutdown refusals and
/// protocol violations.
pub fn run_client(
    deck_path: &Path,
    config: &ClientConfig,
    waveform: &mut dyn Write,
) -> CliResult<usize> {
    let deck_text = std::fs::read_to_string(deck_path)?;
    let id = config.id.clone().unwrap_or_else(|| {
        deck_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "job".to_string())
    });
    let mut attempt: u32 = 0;
    let end = loop {
        match attempt_run(&deck_text, &id, config, waveform) {
            Err(CliError::Io(e))
                if e.kind() == std::io::ErrorKind::ConnectionRefused
                    && attempt < config.retries =>
            {
                std::thread::sleep(backoff_delay(config, attempt));
                attempt += 1;
            }
            Ok(RunEnd::Busy) if attempt < config.retries => {
                std::thread::sleep(backoff_delay(config, attempt));
                attempt += 1;
            }
            other => break other,
        }
    }?;
    match end {
        RunEnd::Done { rows, .. } => Ok(rows),
        RunEnd::Cancelled {
            reason,
            at_time,
            rows,
        } => Err(remote_error(
            "convergence".to_string(),
            format!("job cancelled ({reason}) at t={at_time} after {rows} rows"),
        )),
        RunEnd::Failed { class, message } => Err(remote_error(class, message)),
        RunEnd::Busy => Err(CliError::Deck(if config.retries > 0 {
            format!(
                "server busy: job queue is full ({} attempts exhausted)",
                config.retries + 1
            )
        } else {
            "server busy: job queue is full, try again later".to_string()
        })),
        RunEnd::Rejected { reason, message } => Err(CliError::Deck(format!(
            "server rejected the job ({reason}): {message}"
        ))),
        RunEnd::ShuttingDown => Err(CliError::Deck(
            "server is shutting down and did not accept the job".to_string(),
        )),
    }
}

/// Fetches a [`ServerStats`] snapshot from the daemon at `addr`.
///
/// # Errors
///
/// [`CliError::Io`] for connection failures, [`CliError::Deck`] for
/// protocol violations.
pub fn fetch_stats(addr: &str) -> CliResult<ServerStats> {
    let mut client = Client::connect(addr)?;
    client.stats().map_err(|e| match e {
        ClientError::Io(e) => CliError::Io(e),
        other => CliError::Deck(other.to_string()),
    })
}

/// Renders a [`ServerStats`] snapshot as stable `key: value` lines (the
/// `exi-cli client --stats` output; scripts grep these).
///
/// # Errors
///
/// Propagates write failures on `out`.
pub fn write_stats(stats: &ServerStats, out: &mut dyn Write) -> CliResult<()> {
    writeln!(out, "jobs_accepted: {}", stats.jobs_accepted)?;
    writeln!(out, "jobs_completed: {}", stats.jobs_completed)?;
    writeln!(out, "jobs_failed: {}", stats.jobs_failed)?;
    writeln!(out, "jobs_cancelled: {}", stats.jobs_cancelled)?;
    writeln!(out, "jobs_rejected: {}", stats.jobs_rejected)?;
    writeln!(out, "jobs_rejected_budget: {}", stats.jobs_rejected_budget)?;
    writeln!(out, "jobs_shed_overload: {}", stats.jobs_shed_overload)?;
    writeln!(
        out,
        "jobs_cancelled_overload: {}",
        stats.jobs_cancelled_overload
    )?;
    writeln!(out, "workers_respawned: {}", stats.workers_respawned)?;
    writeln!(out, "connections_reaped: {}", stats.connections_reaped)?;
    writeln!(out, "write_stalls: {}", stats.write_stalls)?;
    writeln!(out, "overload_transitions: {}", stats.overload_transitions)?;
    writeln!(out, "overload_stage: {}", stats.overload_stage)?;
    writeln!(out, "queue_depth: {}", stats.queue_depth)?;
    writeln!(out, "queue_capacity: {}", stats.queue_capacity)?;
    writeln!(out, "workers: {}", stats.workers)?;
    writeln!(out, "accepted_steps: {}", stats.accepted_steps)?;
    writeln!(out, "symbolic_analyses: {}", stats.symbolic_analyses)?;
    writeln!(out, "shared_symbolic_hits: {}", stats.shared_symbolic_hits)?;
    writeln!(out, "plan_compilations: {}", stats.plan_compilations)?;
    writeln!(out, "shared_plan_hits: {}", stats.shared_plan_hits)?;
    Ok(())
}

/// Boots an `exi-serve` daemon in-process and blocks until a client sends a
/// `shutdown` request. Announces the bound address on `status` first (the
/// line scripts and CI wait for).
///
/// # Errors
///
/// [`CliError::Io`] for bind failures.
pub fn run_serve(config: ServeConfig, status: &mut dyn Write) -> CliResult<()> {
    let server = Server::bind(config)?;
    writeln!(status, "exi-serve listening on {}", server.local_addr()?)?;
    status.flush()?;
    let stats = server.run();
    writeln!(
        status,
        "exi-serve: drained and stopped — {} completed, {} failed, {} cancelled, {} rejected; \
         {} symbolic analyses + {} warm hits, {} plan compilations + {} warm hits",
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_cancelled,
        stats.jobs_rejected,
        stats.symbolic_analyses,
        stats.shared_symbolic_hits,
        stats.plan_compilations,
        stats.shared_plan_hits,
    )?;
    Ok(())
}

/// Requests a graceful daemon shutdown: already-admitted jobs drain to
/// completion, then the server exits and prints its drain summary.
///
/// # Errors
///
/// [`CliError::Io`] for connection failures, [`CliError::Deck`] for
/// protocol violations.
pub fn shutdown_server(addr: &str) -> CliResult<()> {
    let mut client = Client::connect(addr)?;
    client.shutdown().map_err(|e| match e {
        ClientError::Io(e) => CliError::Io(e),
        other => CliError::Deck(other.to_string()),
    })
}

/// Parsed `exi-cli client` command.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientCommand {
    /// Deck path; `None` is only valid with [`ClientCommand::shutdown`]
    /// (a shutdown-only invocation).
    pub deck: Option<PathBuf>,
    /// Connection and job settings.
    pub config: ClientConfig,
    /// Waveform destination; `None` writes to stdout.
    pub output: Option<PathBuf>,
    /// Print the daemon's [`ServerStats`] snapshot (after the run, if a
    /// deck was given; before `--shutdown`, if both are set).
    pub stats: bool,
    /// Send a graceful-shutdown request after the run (or on its own when
    /// no deck is given).
    pub shutdown: bool,
}
