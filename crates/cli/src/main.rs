//! The `exi-cli` binary: a thin shell around [`exi_cli::run_main`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(exi_cli::run_main(&args));
}
