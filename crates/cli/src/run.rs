//! The `run` subcommand: drive every analysis card of one deck through a
//! [`Simulator`] session.

use std::io::Write;

use exi_netlist::{Analysis, Deck};
use exi_sim::{resolve_probes, CsvObserver, Method, RunStats, Simulator, StreamingObserver};

use crate::{CliError, CliResult, OutputFormat};

/// Settings of one `exi-cli run` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Integration method for `.tran` analyses.
    pub method: Method,
    /// Waveform format.
    pub format: OutputFormat,
    /// `Some(n)` streams through a fixed-memory decimated buffer of at most
    /// `n` points ([`StreamingObserver`]); `None` writes every accepted point
    /// as it is computed ([`CsvObserver`]).
    pub stream: Option<usize>,
    /// Probe overrides; empty means "the deck's `.print` cards, else every
    /// node".
    pub probes: Vec<String>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            method: Method::ExponentialRosenbrock,
            format: OutputFormat::Csv,
            stream: None,
            probes: Vec::new(),
        }
    }
}

/// What one [`run_deck`] call did.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Number of analysis cards executed.
    pub analyses: usize,
    /// Total waveform data rows written (headers not counted).
    pub rows: usize,
    /// The session's cumulative statistics.
    pub stats: RunStats,
}

// The deck-card → solver-options mapping lives in `exi_sim::deck` so every
// deck driver (this CLI and the `exi-serve` daemon) shares one definition;
// re-exported here because it has always been part of this crate's API.
pub use exi_sim::{analysis_options, tran_options};

/// The probe names a run of `deck` records: the explicit `overrides` when
/// non-empty, else the deck's `.print` cards, else every non-ground node in
/// unknown order (delegates to [`Deck::effective_probes`], the shared
/// cascade).
pub fn effective_probes(deck: &Deck, overrides: &[String]) -> Vec<String> {
    deck.effective_probes(overrides)
}

/// Runs every analysis card of `deck` in one [`Simulator`] session, writing
/// the waveform(s) to `waveform` in the configured format.
///
/// `.tran` cards run with [`RunConfig::method`]; `.op` cards write a
/// `node,voltage` table of the (cached) DC operating point. When the deck
/// holds several analyses each block is preceded by a `# analysis …`
/// comment line; all of them share the session's symbolic-LU, plan and
/// Krylov caches.
///
/// # Errors
///
/// [`CliError::Deck`] when the deck has no analysis cards;
/// [`CliError::Sim`] for unknown probe names and engine failures;
/// [`CliError::Io`] when the waveform sink fails.
///
/// # Examples
///
/// ```
/// use exi_cli::{run_deck, RunConfig};
/// use exi_netlist::parse_deck;
///
/// # fn main() -> Result<(), exi_cli::CliError> {
/// let deck = parse_deck(
///     "V1 a 0 DC 1\n\
///      R1 a b 1k\n\
///      R2 b 0 1k\n\
///      C1 b 0 1f\n\
///      .op\n\
///      .print v(b)\n",
/// )?;
/// let mut out = Vec::new();
/// run_deck(&deck, &RunConfig::default(), &mut out)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("node,voltage\n"));
/// assert!(text.contains("b,"));
/// # Ok(())
/// # }
/// ```
pub fn run_deck(
    deck: &Deck,
    config: &RunConfig,
    waveform: &mut dyn Write,
) -> CliResult<RunSummary> {
    if deck.analyses.is_empty() {
        return Err(CliError::Deck(
            "deck has no analysis cards (.tran or .op)".to_string(),
        ));
    }
    let probe_names = effective_probes(deck, &config.probes);
    let probe_refs: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    let probes = resolve_probes(&deck.circuit, &probe_refs)?;
    let delimiter = config.format.delimiter();
    let mut sim = Simulator::new(&deck.circuit);
    let mut rows = 0usize;
    for (index, analysis) in deck.analyses.iter().enumerate() {
        if deck.analyses.len() > 1 {
            writeln!(waveform, "# analysis {}: {}", index + 1, describe(analysis))?;
        }
        match analysis {
            Analysis::OperatingPoint => {
                let dc = sim.dc()?;
                writeln!(waveform, "node{delimiter}voltage")?;
                for p in &probes {
                    writeln!(
                        waveform,
                        "{}{delimiter}{:.17e}",
                        p.label, dc.state[p.unknown]
                    )?;
                    rows += 1;
                }
            }
            Analysis::Tran { .. } => {
                let options = analysis_options(deck, analysis).expect("transient card");
                rows += match config.stream {
                    Some(capacity) => {
                        let mut streaming = StreamingObserver::new(probes.clone(), capacity);
                        sim.transient_observed(config.method, &options, &mut streaming)?;
                        let wave = streaming.into_waveform();
                        let labels: Vec<&str> =
                            wave.probes.iter().map(|p| p.label.as_str()).collect();
                        let np = wave.probes.len();
                        write_waveform_rows(
                            &labels,
                            wave.times
                                .iter()
                                .enumerate()
                                .map(|(k, &t)| (t, &wave.values[k * np..(k + 1) * np])),
                            delimiter,
                            waveform,
                        )?
                    }
                    None => {
                        let mut csv =
                            CsvObserver::new(&mut *waveform, probes.clone()).delimiter(delimiter);
                        sim.transient_observed(config.method, &options, &mut csv)?;
                        let written = csv.rows();
                        csv.finish()?;
                        written
                    }
                };
            }
        }
    }
    Ok(RunSummary {
        analyses: deck.analyses.len(),
        rows,
        stats: sim.session_stats().clone(),
    })
}

/// Writes a header plus one delimiter-separated row per `(time, values)`
/// pair with 17-significant-digit values, returning the data-row count —
/// the single waveform serializer behind the `run` stream path and the
/// sweep member files.
pub(crate) fn write_waveform_rows<'a>(
    labels: &[&str],
    rows: impl Iterator<Item = (f64, &'a [f64])>,
    delimiter: char,
    out: &mut dyn Write,
) -> CliResult<usize> {
    write!(out, "time")?;
    for label in labels {
        write!(out, "{delimiter}{label}")?;
    }
    writeln!(out)?;
    let mut written = 0;
    for (t, values) in rows {
        write!(out, "{t:.17e}")?;
        for v in values {
            write!(out, "{delimiter}{v:.17e}")?;
        }
        writeln!(out)?;
        written += 1;
    }
    Ok(written)
}

fn describe(analysis: &Analysis) -> String {
    match analysis {
        Analysis::Tran { step, stop, h_max } => match h_max {
            Some(h) => format!(".tran {step:e} {stop:e} {h:e}"),
            None => format!(".tran {step:e} {stop:e}"),
        },
        Analysis::OperatingPoint => ".op".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::parse_deck;

    fn rc_deck(extra_cards: &str) -> Deck {
        parse_deck(&format!(
            "Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
             R1 in out 1k\n\
             C1 out 0 1f\n\
             {extra_cards}"
        ))
        .unwrap()
    }

    // The `.tran`-card → `TransientOptions` mapping tests live with the
    // shared definition in `exi_sim::deck`.

    #[test]
    fn probe_defaults_cascade() {
        let deck = rc_deck(".tran 1p 500p\n.print v(out)\n");
        assert_eq!(effective_probes(&deck, &[]), vec!["out"]);
        assert_eq!(
            effective_probes(&deck, &["in".to_string()]),
            vec!["in".to_string()]
        );
        let no_prints = rc_deck(".tran 1p 500p\n");
        assert_eq!(effective_probes(&no_prints, &[]), vec!["in", "out"]);
    }

    #[test]
    fn run_writes_one_row_per_accepted_point() {
        let deck = rc_deck(".tran 1p 500p\n.print v(out)\n");
        let mut out = Vec::new();
        let summary = run_deck(&deck, &RunConfig::default(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(summary.analyses, 1);
        assert!(summary.rows > 5);
        // header + rows
        assert_eq!(text.lines().count(), summary.rows + 1);
        assert_eq!(summary.stats.accepted_steps + 1, summary.rows);
        assert_eq!(summary.stats.symbolic_analyses, 1);
    }

    #[test]
    fn streamed_run_stays_within_capacity() {
        let deck = rc_deck(".tran 1p 500p\n.print v(out) v(in)\n");
        let mut out = Vec::new();
        let config = RunConfig {
            stream: Some(8),
            ..RunConfig::default()
        };
        let summary = run_deck(&deck, &config, &mut out).unwrap();
        assert!(summary.rows < 8, "rows {}", summary.rows);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("time,out,in\n"));
    }

    #[test]
    fn multiple_analyses_share_one_session() {
        let deck = rc_deck(".op\n.tran 1p 200p\n.tran 1p 200p\n.print v(out)\n");
        let mut out = Vec::new();
        let summary = run_deck(&deck, &RunConfig::default(), &mut out).unwrap();
        assert_eq!(summary.analyses, 3);
        // One symbolic analysis for the DC solve and both transients.
        assert_eq!(summary.stats.symbolic_analyses, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("# analysis 1: .op"));
        assert!(text.contains("# analysis 2: .tran"));
        assert!(text.contains("node,voltage"));
    }

    #[test]
    fn deck_problems_are_reported() {
        let no_analysis = rc_deck("");
        let e = run_deck(&no_analysis, &RunConfig::default(), &mut Vec::new()).unwrap_err();
        assert!(matches!(e, CliError::Deck(_)), "{e:?}");
        let deck = rc_deck(".tran 1p 500p\n");
        let config = RunConfig {
            probes: vec!["nope".to_string()],
            ..RunConfig::default()
        };
        let e = run_deck(&deck, &config, &mut Vec::new()).unwrap_err();
        assert!(matches!(e, CliError::Sim(_)), "{e:?}");
    }
}
